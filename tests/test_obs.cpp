// Observability layer: histograms, per-arbiter metric probes, the trace
// sink with its JSONL / Chrome exporters, BenchReporter, degenerate
// arbiter sizes (N=1 elided, N=2 smallest real) through generator ->
// insertion -> simulation, and run-to-run determinism of the diagnostic
// and trace streams.
#include <gtest/gtest.h>

#include <fstream>
#include <limits>
#include <sstream>

#include "core/generator.hpp"
#include "core/insertion.hpp"
#include "fault/fault.hpp"
#include "obs/bench_report.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rcsim/system_sim.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"

namespace rcarb {
namespace {

using core::Binding;
using core::InsertionResult;
using obs::Histogram;
using obs::TraceBuffer;
using obs::TraceEvent;
using obs::TraceKind;
using rcsim::SimOptions;
using rcsim::SimResult;
using rcsim::SystemSimulator;
using tg::Program;
using tg::TaskGraph;

Binding single_bank_binding(const TaskGraph& g, std::size_t num_tasks) {
  Binding b;
  b.task_to_pe.assign(num_tasks, 0);
  b.segment_to_bank.assign(g.num_segments(), 0);
  b.channel_to_phys.assign(g.num_channels(), -1);
  b.num_banks = 1;
  b.bank_names = {"BANK"};
  return b;
}

/// `num_tasks` tasks each storing `accesses` words into one shared bank.
TaskGraph contention_graph(int num_tasks, int accesses) {
  TaskGraph g{"obs"};
  g.add_segment("s0", 64, 16);
  for (int t = 0; t < num_tasks; ++t) {
    Program p;
    p.load_imm(0, 0);
    for (int i = 0; i < accesses; ++i)
      p.store(0, 0, 0, (t * accesses + i) % 16);
    p.halt();
    std::string name = "t";  // built piecewise: GCC 12's -Wrestrict trips
    name += std::to_string(t);  // on `const char* + std::string&&` at -O3
    g.add_task(name, p, 1);
  }
  return g;
}

// ----------------------------------------------------------------- histogram

TEST(ObsHistogram, BucketsPowersOfTwo) {
  Histogram h;
  for (std::uint64_t v : {0ull, 1ull, 2ull, 3ull, 4ull, 7ull, 8ull, 100ull})
    h.record(v);
  EXPECT_EQ(h.count(), 8u);
  EXPECT_EQ(h.sum(), 125u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_EQ(h.bucket(0), 1u);  // {0}
  EXPECT_EQ(h.bucket(1), 1u);  // {1}
  EXPECT_EQ(h.bucket(2), 2u);  // {2,3}
  EXPECT_EQ(h.bucket(3), 2u);  // {4..7}
  EXPECT_EQ(h.bucket(4), 1u);  // {8..15}
  EXPECT_EQ(h.bucket(7), 1u);  // {64..127}
  EXPECT_EQ(Histogram::bucket_range(3).first, 4u);
  EXPECT_EQ(Histogram::bucket_range(3).second, 7u);
}

TEST(ObsHistogram, PercentileReturnsBucketUpperBound) {
  Histogram h;
  for (int i = 0; i < 99; ++i) h.record(1);
  h.record(64);
  EXPECT_EQ(h.percentile(0.5), 1u);
  EXPECT_EQ(h.percentile(0.99), 1u);  // rank 98 of 100 is still a 1
  EXPECT_EQ(h.percentile(1.0), 64u);  // 64's bucket tops at 127, clamped
  EXPECT_EQ(h.percentile(0.0), 1u);
  Histogram empty;
  EXPECT_EQ(empty.percentile(0.5), 0u);
  EXPECT_EQ(empty.summarize(), "n=0");
}

TEST(ObsHistogram, PercentileEdges) {
  // The four boundary cases of the cumulative-rank walk, pinned:
  // p = 0.0 answers the minimum's bucket, p = 1.0 the maximum's (clamped
  // to the observed max), an empty histogram answers 0 for every p, and a
  // histogram with all samples in one bucket answers that bucket always.
  Histogram empty;
  for (double p : {0.0, 0.25, 0.5, 1.0}) EXPECT_EQ(empty.percentile(p), 0u);

  Histogram one_bucket;  // all counts in major bucket [4,7]
  for (std::uint64_t v : {4ull, 5ull, 6ull, 7ull, 5ull}) one_bucket.record(v);
  // Small values land in exact (1-wide) sub-buckets, so the nearest-rank
  // answers are the sorted samples {4,5,5,6,7} themselves.
  EXPECT_EQ(one_bucket.percentile(0.0), 4u);  // rank 0
  EXPECT_EQ(one_bucket.percentile(0.3), 5u);  // rank 1
  EXPECT_EQ(one_bucket.percentile(0.7), 5u);  // rank 2
  EXPECT_EQ(one_bucket.percentile(1.0), 7u);  // rank 4

  Histogram spread;  // min sub-bucket {1}, max in major [8,15]
  spread.record(1);
  spread.record(2);
  spread.record(9);
  EXPECT_EQ(spread.percentile(0.0), 1u);   // rank 0
  EXPECT_EQ(spread.percentile(0.5), 2u);   // rank 1 -> exact sub-bucket {2}
  EXPECT_EQ(spread.percentile(1.0), 9u);   // rank 2, clamped to max

  // percentile() never exceeds max(): a single sample at a bucket's lower
  // edge must not report the bucket's upper edge.
  Histogram single;
  single.record(64);
  EXPECT_EQ(single.percentile(0.5), 64u);
  EXPECT_EQ(single.percentile(1.0), 64u);

  // Out-of-domain p is clamped into [0, 1].
  EXPECT_EQ(spread.percentile(-3.0), 1u);
  EXPECT_EQ(spread.percentile(7.0), 9u);
}

TEST(ObsHistogram, LinearSubBucketsBoundTailQuantization) {
  // The pure pow-2 form answered any percentile with the enclosing pow-2
  // bucket's upper edge — up to 2x the true value.  The HDR sub-buckets
  // bound the overshoot to span/16 (6.25%).  Pinned on 1..1000 recorded
  // once each:
  Histogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  // p50 rank 499 -> value 500, major [256,511] sliced by 16 (step 16):
  // sub upper 511 would have been the pow-2 answer too; p90 shows the fix.
  EXPECT_EQ(h.percentile(0.50), 511u);
  // p90 rank 899 -> value 900, major [512,1023] step 32 -> upper 927
  // (the pow-2 form said 1000 after the max clamp; true value 900).
  EXPECT_EQ(h.percentile(0.90), 927u);
  // p999 rank 998 -> value 999 -> sub [992,1023] clamped to max 1000.
  EXPECT_EQ(h.percentile(0.999), 1000u);
  // Every percentile overshoots its true value by at most 1/16 + the clamp.
  for (double p : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}) {
    const auto truth = static_cast<std::uint64_t>(p * 999.0) + 1;
    EXPECT_GE(h.percentile(p), truth) << p;
    EXPECT_LE(h.percentile(p), truth + truth / 16 + 1) << p;
  }
  // Values below 2^4 stay exact.
  Histogram small;
  for (std::uint64_t v : {3ull, 3ull, 3ull, 11ull}) small.record(v);
  EXPECT_EQ(small.percentile(0.5), 3u);
  EXPECT_EQ(small.percentile(1.0), 11u);
}

TEST(ObsHistogram, MergeMatchesRecordingEverything) {
  // merge() must be indistinguishable from having recorded every value
  // into one histogram — the contract the parallel sweep reduction needs.
  Rng rng(77);
  Histogram parts[4];
  Histogram whole;
  for (int i = 0; i < 4000; ++i) {
    const std::uint64_t v = rng.next_u64() >> (rng.next_below(60));
    parts[i % 4].record(v);
    whole.record(v);
  }
  Histogram merged;
  for (const Histogram& part : parts) merged.merge(part);
  EXPECT_EQ(merged.count(), whole.count());
  EXPECT_EQ(merged.sum(), whole.sum());
  EXPECT_EQ(merged.max(), whole.max());
  for (int i = 0; i < Histogram::kBuckets; ++i)
    EXPECT_EQ(merged.bucket(i), whole.bucket(i)) << i;
  for (double p : {0.0, 0.5, 0.9, 0.99, 0.999, 1.0})
    EXPECT_EQ(merged.percentile(p), whole.percentile(p)) << p;
  // Merging an empty histogram is a no-op; merging into empty copies.
  Histogram empty;
  merged.merge(empty);
  EXPECT_EQ(merged.count(), whole.count());
  empty.merge(whole);
  EXPECT_EQ(empty.percentile(0.99), whole.percentile(0.99));
}

TEST(ObsHistogram, MergeCountsSaturateInsteadOfWrapping) {
  // Doubling a one-sample histogram into itself 64+ times would wrap a
  // plain uint64 counter back through zero; saturating arithmetic pins
  // every counter at UINT64_MAX and keeps percentiles sane.
  Histogram h;
  h.record(5);
  for (int i = 0; i < 70; ++i) h.merge(h);
  EXPECT_EQ(h.count(), std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(h.sum(), std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(h.max(), 5u);
  EXPECT_EQ(h.percentile(0.999), 5u);
  EXPECT_EQ(h.bucket(3), std::numeric_limits<std::uint64_t>::max());
  // One more record() on a saturated histogram stays pinned.
  h.record(5);
  EXPECT_EQ(h.count(), std::numeric_limits<std::uint64_t>::max());
}

// ------------------------------------------------------------ metric probes

TEST(ObsMetrics, ProbeAgreesWithArbiterStats) {
  TaskGraph g = contention_graph(3, 5);
  Binding b = single_bank_binding(g, 3);
  const InsertionResult ins = core::insert_arbitration(g, b, {});
  SimOptions so;
  so.arbiter_metrics = true;
  SystemSimulator sim(ins.graph, b, ins.plan, so);
  const SimResult r = sim.run({0, 1, 2});
  ASSERT_EQ(r.arbiter_obs.size(), 1u);
  const obs::ArbiterMetrics& m = r.arbiter_obs[0];
  EXPECT_EQ(m.name, "BANK");
  EXPECT_EQ(m.ports, 3);
  // The probe observes the same wire stream the simulator accounts.
  EXPECT_EQ(m.grant_latency.count(), r.arbiters[0].grants);
  std::uint64_t probe_granted = 0;
  std::uint64_t probe_grants = 0;
  for (const auto& p : m.port) {
    probe_granted += p.granted_cycles;
    probe_grants += p.grants;
  }
  EXPECT_EQ(probe_grants, r.arbiters[0].grants);
  EXPECT_EQ(probe_granted, r.arbiters[0].granted_cycles);
  EXPECT_LE(m.grant_latency.max(), r.arbiters[0].max_wait);
  // Round-robin obeys the paper's N-1 grant-turn bound, and saturated
  // symmetric contention is near-perfectly fair.
  EXPECT_TRUE(m.within_n_minus_1_bound());
  EXPECT_LE(m.worst_turns_waited(), 2u);
  EXPECT_GT(m.fairness_jain(), 0.9);
  EXPECT_LE(m.fairness_jain(), 1.0);
  EXPECT_FALSE(m.summarize().empty());
}

TEST(ObsMetrics, DisabledLeavesNoProbesAndSameSimulation) {
  TaskGraph g = contention_graph(3, 5);
  Binding b = single_bank_binding(g, 3);
  const InsertionResult ins = core::insert_arbitration(g, b, {});
  const SimOptions off;  // metrics are opt-in; the default attaches nothing
  SimOptions on;
  on.arbiter_metrics = true;
  SystemSimulator sim_off(ins.graph, b, ins.plan, off);
  SystemSimulator sim_on(ins.graph, b, ins.plan, on);
  const SimResult a = sim_off.run({0, 1, 2});
  const SimResult c = sim_on.run({0, 1, 2});
  EXPECT_TRUE(a.arbiter_obs.empty());
  EXPECT_EQ(a.cycles, c.cycles);
  EXPECT_EQ(a.arbiters[0].grants, c.arbiters[0].grants);
}

// ------------------------------------------------------------- trace events

TEST(ObsTrace, ProtocolEventsAreRecorded) {
  TaskGraph g = contention_graph(2, 4);
  Binding b = single_bank_binding(g, 2);
  const InsertionResult ins = core::insert_arbitration(g, b, {});
  TraceBuffer buf;
  SimOptions so;
  so.trace_sink = &buf;
  SystemSimulator sim(ins.graph, b, ins.plan, so);
  const SimResult r = sim.run({0, 1});
  EXPECT_GT(buf.size(), 0u);

  std::size_t starts = 0, finishes = 0, requests = 0, releases = 0,
              grants = 0, grant_ends = 0;
  std::uint64_t prev_cycle = 0;
  for (const TraceEvent& e : buf.events()) {
    EXPECT_GE(e.cycle, prev_cycle) << "trace must be cycle-ordered";
    prev_cycle = e.cycle;
    switch (e.kind) {
      case TraceKind::kTaskStart: ++starts; break;
      case TraceKind::kTaskFinish: ++finishes; break;
      case TraceKind::kRequest: ++requests; break;
      case TraceKind::kRelease: ++releases; break;
      case TraceKind::kGrant: ++grants; break;
      case TraceKind::kGrantEnd: ++grant_ends; break;
      default: break;
    }
  }
  EXPECT_EQ(starts, 2u);
  EXPECT_EQ(finishes, 2u);
  EXPECT_EQ(requests, r.tasks[0].acquires + r.tasks[1].acquires);
  EXPECT_EQ(requests, releases) << "every burst opens and closes";
  EXPECT_EQ(grants, r.arbiters[0].grants);
  // Every grant hand-off that happened has a matching end; at most the
  // final in-flight hold is unclosed.
  EXPECT_GE(grants, grant_ends);
  EXPECT_LE(grants - grant_ends, 1u);
}

TEST(ObsTrace, JsonlExportIsOneObjectPerLine) {
  TaskGraph g = contention_graph(2, 3);
  Binding b = single_bank_binding(g, 2);
  const InsertionResult ins = core::insert_arbitration(g, b, {});
  TraceBuffer buf;
  SimOptions so;
  so.trace_sink = &buf;
  SystemSimulator sim(ins.graph, b, ins.plan, so);
  sim.run({0, 1});

  std::ostringstream os;
  obs::write_jsonl(os, buf.events(), sim.trace_meta());
  std::istringstream is(os.str());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(is, line)) {
    ++lines;
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"cycle\":"), std::string::npos);
    EXPECT_NE(line.find("\"kind\":\""), std::string::npos);
  }
  EXPECT_EQ(lines, buf.size());
  EXPECT_NE(os.str().find("\"task_name\":\"t0\""), std::string::npos);
  EXPECT_NE(os.str().find("\"arbiter_name\":\"BANK\""), std::string::npos);
}

TEST(ObsTrace, ChromeTraceExportIsBalancedJson) {
  TaskGraph g = contention_graph(2, 3);
  Binding b = single_bank_binding(g, 2);
  const InsertionResult ins = core::insert_arbitration(g, b, {});
  TraceBuffer buf;
  SimOptions so;
  so.trace_sink = &buf;
  SystemSimulator sim(ins.graph, b, ins.plan, so);
  sim.run({0, 1});

  std::ostringstream os;
  obs::write_chrome_trace(os, buf.events(), sim.trace_meta());
  const std::string out = os.str();
  EXPECT_EQ(out.rfind("{\"displayTimeUnit\"", 0), 0u);
  EXPECT_NE(out.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(out.find("\"ph\":\"M\""), std::string::npos);  // metadata rows
  EXPECT_NE(out.find("\"ph\":\"X\""), std::string::npos);  // spans
  EXPECT_NE(out.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(out.find("run t0"), std::string::npos);
  EXPECT_NE(out.find("hold BANK"), std::string::npos);
  // Crude structural validity: braces and brackets balance, no trailing
  // comma before the closing bracket.
  std::ptrdiff_t braces = 0, brackets = 0;
  for (char ch : out) {
    if (ch == '{') ++braces;
    if (ch == '}') --braces;
    if (ch == '[') ++brackets;
    if (ch == ']') --brackets;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_EQ(out.find(",]"), std::string::npos);
  EXPECT_EQ(out.find(",\n]"), std::string::npos);
}

TEST(ObsTrace, NoSinkMeansNoEmissionAndSameResult) {
  TaskGraph g = contention_graph(3, 6);
  Binding b = single_bank_binding(g, 3);
  const InsertionResult ins = core::insert_arbitration(g, b, {});
  TraceBuffer buf;
  SimOptions with;
  with.trace_sink = &buf;
  SystemSimulator sim_with(ins.graph, b, ins.plan, with);
  SystemSimulator sim_without(ins.graph, b, ins.plan, {});
  const SimResult a = sim_with.run({0, 1, 2});
  const SimResult c = sim_without.run({0, 1, 2});
  EXPECT_GT(buf.size(), 0u);
  EXPECT_EQ(a.cycles, c.cycles) << "tracing must not perturb the simulation";
  EXPECT_EQ(a.arbiters[0].grants, c.arbiters[0].grants);
  EXPECT_EQ(a.tasks[2].finish_cycle, c.tasks[2].finish_cycle);
}

// -------------------------------------------------------------- determinism

TEST(ObsTrace, IdenticallySeededRunsProduceByteIdenticalStreams) {
  auto run_once = [](std::string* diag_stream, std::string* trace_stream) {
    TaskGraph g = contention_graph(3, 6);
    Binding b = single_bank_binding(g, 3);
    core::InsertionOptions io;
    io.retry_timeout = 6;
    const InsertionResult ins = core::insert_arbitration(g, b, io);
    fault::FaultTargets targets;
    targets.arbiter_ports = {3};
    targets.arbiter_state_bits = {6};
    fault::FaultPlanOptions fo;
    fo.seed = 11;
    fo.rate = 1e-3;
    TraceBuffer buf;
    SimOptions so;
    so.strict = false;
    so.seed = 42;
    so.watchdog_timeout = 16;
    so.faults = fault::plan_faults(targets, fo);
    so.trace_sink = &buf;
    SystemSimulator sim(ins.graph, b, ins.plan, so);
    const SimResult r = sim.run({0, 1, 2});
    std::string ds;
    for (const auto& d : r.diagnostics) ds += d.format() + "\n";
    *diag_stream = ds;
    std::ostringstream os;
    obs::write_jsonl(os, buf.events(), sim.trace_meta());
    *trace_stream = os.str();
  };
  std::string diag_a, trace_a, diag_b, trace_b;
  run_once(&diag_a, &trace_a);
  run_once(&diag_b, &trace_b);
  EXPECT_EQ(diag_a, diag_b);
  EXPECT_EQ(trace_a, trace_b);
}

TEST(ObsDiagnostics, DetailSuppressedKeepsKindsAndDropsStrings) {
  TaskGraph g = contention_graph(2, 4);
  Binding b = single_bank_binding(g, 2);
  // No plan: unarbitrated contention produces bank-conflict diagnostics.
  core::ArbitrationPlan plan;
  plan.arbiters_of_resource.assign(b.num_resources(), {});
  SimOptions terse;
  terse.strict = false;
  terse.diag_detail = false;
  SystemSimulator sim_terse(g, b, plan, terse);
  SimOptions verbose;
  verbose.strict = false;
  SystemSimulator sim_verbose(g, b, plan, verbose);
  const SimResult t = sim_terse.run({0, 1});
  const SimResult v = sim_verbose.run({0, 1});
  ASSERT_GT(t.diagnostics.size(), 0u);
  ASSERT_EQ(t.diagnostics.size(), v.diagnostics.size());
  for (std::size_t i = 0; i < t.diagnostics.size(); ++i) {
    EXPECT_EQ(t.diagnostics[i].kind, v.diagnostics[i].kind);
    EXPECT_EQ(t.diagnostics[i].cycle, v.diagnostics[i].cycle);
    EXPECT_EQ(t.diagnostics[i].task, v.diagnostics[i].task);
    EXPECT_TRUE(t.diagnostics[i].detail.empty());
    EXPECT_FALSE(v.diagnostics[i].detail.empty());
  }
}

// ------------------------------------------------- degenerate arbiter sizes

TEST(ObsDegenerate, SingleAccessorIsElidedAndSimulatesClean) {
  // N=1: one task per bank — insertion must not build a 1-port arbiter
  // (core::Arbiter requires n >= 2); the access path stays unarbitrated.
  TaskGraph g{"n1"};
  g.add_segment("s0", 64, 16);
  Program p;
  p.load_imm(0, 0);
  for (int i = 0; i < 4; ++i) p.store(0, 0, 0, i);
  p.halt();
  g.add_task("solo", p, 1);
  Binding b = single_bank_binding(g, 1);
  const InsertionResult ins = core::insert_arbitration(g, b, {});
  EXPECT_TRUE(ins.plan.arbiters.empty());
  SystemSimulator sim(ins.graph, b, ins.plan);
  const SimResult r = sim.run({0});
  EXPECT_EQ(r.protocol_violations, 0u);
  EXPECT_EQ(r.bank_conflicts, 0u);
  EXPECT_TRUE(r.arbiter_obs.empty());
  EXPECT_EQ(r.cycles, 5u);  // load_imm + 4 stores; halt drains for free
}

TEST(ObsDegenerate, TwoPortArbiterEndToEnd) {
  // N=2: the smallest real arbiter, through generator -> insertion ->
  // simulation.  The generator must synthesize it and the simulated pair
  // must interleave without conflicts, within the N-1 = 1 turn bound.
  const core::GeneratedArbiter gen = core::generate_round_robin(
      2, synth::FlowKind::kExpressLike, synth::Encoding::kOneHot);
  EXPECT_EQ(gen.chars.n, 2);
  EXPECT_GT(gen.chars.clbs, 0u);

  TaskGraph g = contention_graph(2, 5);
  Binding b = single_bank_binding(g, 2);
  const InsertionResult ins = core::insert_arbitration(g, b, {});
  ASSERT_EQ(ins.plan.arbiters.size(), 1u);
  EXPECT_EQ(ins.plan.arbiters[0].ports.size(), 2u);
  SimOptions so;
  so.arbiter_metrics = true;
  SystemSimulator sim(ins.graph, b, ins.plan, so);
  const SimResult r = sim.run({0, 1});
  EXPECT_EQ(r.protocol_violations, 0u);
  EXPECT_EQ(r.bank_conflicts, 0u);
  ASSERT_EQ(r.arbiter_obs.size(), 1u);
  EXPECT_TRUE(r.arbiter_obs[0].within_n_minus_1_bound());
  EXPECT_LE(r.arbiter_obs[0].worst_turns_waited(), 1u);
}

// ------------------------------------------------------------ bench reports

TEST(ObsBenchReport, WritesSchemaTaggedJson) {
  obs::BenchReporter rep("unit_test");
  rep.metric("speedup", 1.5, "ratio");
  rep.metric("cycles", 1234, "cycles");
  rep.note("policy", "round-robin");
  const std::string path = rep.write(::testing::TempDir());
  ASSERT_FALSE(path.empty());
  std::ifstream is(path);
  ASSERT_TRUE(is.good());
  std::stringstream ss;
  ss << is.rdbuf();
  const std::string out = ss.str();
  EXPECT_NE(out.find("\"schema\": \"rcarb-bench-v1\""), std::string::npos);
  EXPECT_NE(out.find("\"bench\": \"unit_test\""), std::string::npos);
  EXPECT_NE(out.find("\"speedup\""), std::string::npos);
  EXPECT_NE(out.find("\"unit\": \"ratio\""), std::string::npos);
  EXPECT_NE(out.find("\"wall_ms\""), std::string::npos);
  EXPECT_NE(out.find("\"commit\""), std::string::npos);
  EXPECT_NE(out.find("\"policy\": \"round-robin\""), std::string::npos);
  std::ptrdiff_t braces = 0;
  for (char ch : out) {
    if (ch == '{') ++braces;
    if (ch == '}') --braces;
  }
  EXPECT_EQ(braces, 0);
}

TEST(ObsBenchReport, CreatesMissingDirectory) {
  // A merely-absent RCARB_BENCH_DIR target (the common CI case) is created
  // rather than reported as a failure — including nested components.
  const std::string dir =
      ::testing::TempDir() + "/rcarb_bench_missing/nested/deeper";
  obs::BenchReporter rep("mkdir_test");
  rep.metric("x", 1.0);
  const std::string path = rep.write(dir);
  ASSERT_EQ(path, dir + "/BENCH_mkdir_test.json");
  std::ifstream is(path);
  EXPECT_TRUE(is.good());
}

TEST(ObsBenchReport, UnwritableDirectoryFailsLoudly) {
  // A path that cannot be a directory (a component is a regular file) must
  // produce "" *and* a diagnostic naming the path — a silent empty report
  // would leave CI validating nothing.  (chmod-based probes are useless
  // here: tests may run as root.)
  const std::string file = ::testing::TempDir() + "/rcarb_not_a_dir";
  { std::ofstream(file) << "occupied"; }
  obs::BenchReporter rep("fail_test");
  rep.metric("x", 1.0);
  ::testing::internal::CaptureStderr();
  const std::string path = rep.write(file + "/sub");
  const std::string diag = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(path, "");
  EXPECT_NE(diag.find("BENCH_fail_test.json"), std::string::npos)
      << "diagnostic must name the report path: " << diag;
  EXPECT_NE(diag.find(file + "/sub"), std::string::npos)
      << "diagnostic must name the directory: " << diag;
}

TEST(ObsBenchReport, ConcurrentRecordingIsSafe) {
  // The merge path for parallel sweeps: N workers recording into one
  // reporter concurrently must lose nothing (order is schedule-dependent —
  // deterministic reports record from the ordered reducer instead).
  obs::BenchReporter rep("merge_test");
  constexpr int kWorkers = 8, kEach = 50;
  parallel_for_each(
      kWorkers,
      [&](std::size_t w) {
        for (int i = 0; i < kEach; ++i) {
          std::string key = "m";
          key += std::to_string(w);
          key += '_';
          key += std::to_string(i);
          rep.metric(key, static_cast<double>(i));
        }
      },
      kWorkers);
  const std::string path = rep.write(::testing::TempDir());
  ASSERT_FALSE(path.empty());
  std::ifstream is(path);
  std::stringstream ss;
  ss << is.rdbuf();
  const std::string out = ss.str();
  for (int w = 0; w < kWorkers; ++w)
    for (int i = 0; i < kEach; ++i) {
      const std::string key =
          "\"m" + std::to_string(w) + "_" + std::to_string(i) + "\"";
      ASSERT_NE(out.find(key), std::string::npos) << key;
    }
}

}  // namespace
}  // namespace rcarb
