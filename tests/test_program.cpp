#include <gtest/gtest.h>

#include "support/check.hpp"
#include "taskgraph/program.hpp"

namespace rcarb::tg {
namespace {

TEST(Program, BuildersAppendOps) {
  Program p;
  p.load_imm(0, 5).add(1, 0, 0).store(2, 0, 1).halt();
  ASSERT_EQ(p.size(), 4u);
  EXPECT_EQ(p.ops()[0].code, OpCode::kLoadImm);
  EXPECT_EQ(p.ops()[1].code, OpCode::kAdd);
  EXPECT_EQ(p.ops()[2].code, OpCode::kStore);
  EXPECT_EQ(p.ops()[3].code, OpCode::kHalt);
}

TEST(Program, ValidateAcceptsBalancedLoops) {
  Program p;
  p.loop_begin(3).compute(1).loop_begin(2).compute(1).loop_end().loop_end();
  EXPECT_NO_THROW(p.validate());
}

TEST(Program, ValidateRejectsUnbalancedLoops) {
  Program open;
  open.loop_begin(3).compute(1);
  EXPECT_THROW(open.validate(), CheckError);
  Program close;
  close.loop_end();
  EXPECT_THROW(close.validate(), CheckError);
}

TEST(Program, RejectsBadOperands) {
  Program p;
  EXPECT_THROW(p.load_imm(-1, 0), CheckError);
  EXPECT_THROW(p.load_imm(32, 0), CheckError);
  EXPECT_THROW(p.load(0, -1, 0), CheckError);
  EXPECT_THROW(p.compute(-1), CheckError);
  EXPECT_THROW(p.shr(0, 0, 64), CheckError);
  EXPECT_THROW(p.loop_begin(-1), CheckError);
}

TEST(Program, AccessedSegmentsDeduplicated) {
  Program p;
  p.load(0, 3, 0).store(3, 0, 1).load(2, 1, 0);
  EXPECT_EQ(p.accessed_segments(), (std::vector<int>{1, 3}));
}

TEST(Program, ChannelDirectionQueries) {
  Program p;
  p.send(2, 0).recv(1, 5).send(2, 1);
  EXPECT_EQ(p.sent_channels(), (std::vector<int>{2}));
  EXPECT_EQ(p.received_channels(), (std::vector<int>{5}));
}

TEST(Program, OpCountsClassifyCorrectly) {
  Program p;
  p.add(0, 1, 2).sub(0, 1, 2).mul(0, 1, 2).mul_q(0, 1, 2, 8);
  p.load(0, 0, 0).store(0, 0, 0).send(0, 0).recv(0, 0).compute(5);
  const auto counts = p.op_counts();
  EXPECT_EQ(counts.alu, 2u);
  EXPECT_EQ(counts.multiplies, 2u);
  EXPECT_EQ(counts.mem_accesses, 2u);
  EXPECT_EQ(counts.channel_ops, 2u);
  EXPECT_EQ(counts.total, 9u);
}

TEST(Program, ToStringIndentsLoops) {
  Program p;
  p.loop_begin(2).compute(1).loop_end();
  const std::string s = p.to_string();
  EXPECT_NE(s.find("loop_begin"), std::string::npos);
  EXPECT_NE(s.find("  compute"), std::string::npos);
}

TEST(Program, AcquireReleaseOps) {
  Program p;
  p.acquire(3).release(3);
  EXPECT_EQ(p.ops()[0].code, OpCode::kAcquire);
  EXPECT_EQ(p.ops()[0].a, 3);
  EXPECT_EQ(p.ops()[1].code, OpCode::kRelease);
  EXPECT_THROW(p.acquire(-1), CheckError);
}

TEST(Program, OpCodeNames) {
  EXPECT_STREQ(to_string(OpCode::kLoad), "load");
  EXPECT_STREQ(to_string(OpCode::kAcquire), "acquire");
  EXPECT_STREQ(to_string(OpCode::kHalt), "halt");
}

}  // namespace
}  // namespace rcarb::tg
