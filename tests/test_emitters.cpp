#include <gtest/gtest.h>

#include "core/generator.hpp"
#include "fft/fft_design.hpp"
#include "netlist/simulator.hpp"
#include "netlist/vhdl_emit.hpp"
#include "support/check.hpp"
#include "taskgraph/dot_export.hpp"

namespace rcarb {
namespace {

// ------------------------------------------------------- netlist -> VHDL

netlist::Netlist small_netlist() {
  netlist::Netlist nl;
  const auto a = nl.add_input("a");
  const auto b = nl.add_input("b");
  const auto f = nl.add_lut({a, b}, 0b0110, "xor_ab");
  const auto q = nl.add_dff(f, true, "q_reg");
  const auto g = nl.add_lut({q}, 0b01, "inv_q");
  nl.mark_output(g, "out");
  return nl;
}

TEST(NetlistVhdl, EntityAndPorts) {
  const std::string v = netlist::emit_vhdl(small_netlist(), "toy");
  EXPECT_NE(v.find("entity toy is"), std::string::npos);
  EXPECT_NE(v.find("clk : in std_logic"), std::string::npos);
  EXPECT_NE(v.find("rst : in std_logic"), std::string::npos);
  EXPECT_NE(v.find("a : in std_logic"), std::string::npos);
  EXPECT_NE(v.find("out_o : out std_logic"), std::string::npos);
  EXPECT_NE(v.find("end architecture structural;"), std::string::npos);
}

TEST(NetlistVhdl, LutTruthTableSpelledOut) {
  const std::string v = netlist::emit_vhdl(small_netlist(), "toy");
  // XOR of (b & a): rows 01 and 10 are '1'.
  EXPECT_NE(v.find("'1' when \"01\""), std::string::npos);
  EXPECT_NE(v.find("'1' when \"10\""), std::string::npos);
  EXPECT_NE(v.find("'0' when \"11\""), std::string::npos);
}

TEST(NetlistVhdl, RegisterProcessWithInitReset) {
  const std::string v = netlist::emit_vhdl(small_netlist(), "toy");
  EXPECT_NE(v.find("registers: process (clk, rst)"), std::string::npos);
  EXPECT_NE(v.find("q_reg <= '1';"), std::string::npos)
      << "reset must restore the DFF init value";
  EXPECT_NE(v.find("rising_edge(clk)"), std::string::npos);
  EXPECT_NE(v.find("q_reg <= xor_ab;"), std::string::npos);
}

TEST(NetlistVhdl, ConstantLutEmitsLiteral) {
  netlist::Netlist nl;
  const auto c = nl.add_lut({}, 0b1, "const1");
  nl.mark_output(c, "one");
  const std::string v = netlist::emit_vhdl(nl, "consts");
  EXPECT_NE(v.find("const1 <= '1';"), std::string::npos);
}

TEST(NetlistVhdl, SanitizesAndDeduplicatesNames) {
  netlist::Netlist nl;
  const auto a = nl.add_input("weird name!");
  const auto f = nl.add_lut({a}, 0b10, "weird_name_");  // sanitizes same
  nl.mark_output(f, "o");
  const std::string v = netlist::emit_vhdl(nl, "dedupe");
  EXPECT_NE(v.find("weird_name_ : in std_logic"), std::string::npos);
  EXPECT_NE(v.find("weird_name__1"), std::string::npos)
      << "colliding sanitized names must get a suffix";
  EXPECT_THROW(netlist::emit_vhdl(nl, "bad name"), CheckError);
}

TEST(NetlistVhdl, WholeArbiterEmits) {
  const auto g = core::generate_round_robin(
      4, synth::FlowKind::kExpressLike, synth::Encoding::kOneHot);
  const std::string v = netlist::emit_vhdl(g.synth.netlist, "rr4_mapped");
  EXPECT_NE(v.find("entity rr4_mapped is"), std::string::npos);
  for (int i = 0; i < 4; ++i) {
    EXPECT_NE(v.find("req" + std::to_string(i) + " : in std_logic"),
              std::string::npos);
    EXPECT_NE(v.find("grant" + std::to_string(i) + "_o"), std::string::npos);
  }
  // One selected assignment per LUT.
  std::size_t count = 0, pos = 0;
  while ((pos = v.find("select\n", pos)) != std::string::npos) {
    ++count;
    ++pos;
  }
  EXPECT_EQ(count, g.synth.netlist.num_luts());
}

// ----------------------------------------------------------- taskgraph DOT

TEST(DotExport, Fig10ShapesPresent) {
  const fft::FftDesign d = fft::build_fft_design();
  const std::string dot = tg::to_dot(d.graph);
  EXPECT_NE(dot.find("digraph \"fft4x4\""), std::string::npos);
  EXPECT_NE(dot.find("label=\"F1\""), std::string::npos);
  EXPECT_NE(dot.find("label=\"ML3\""), std::string::npos);
  EXPECT_NE(dot.find("shape=box"), std::string::npos);
  EXPECT_NE(dot.find("shape=ellipse"), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos)
      << "control deps draw dashed, as in Fig. 10";
}

TEST(DotExport, DataEdgesFollowAccessDirection) {
  tg::TaskGraph g("dirs");
  g.add_segment("S", 16, 4);
  tg::Program writer;
  writer.load_imm(0, 0).store(0, 0, 0).halt();
  tg::Program reader;
  reader.load_imm(0, 0).load(1, 0, 0).halt();
  g.add_task("W", writer, 1);
  g.add_task("R", reader, 1);
  const std::string dot = tg::to_dot(g);
  EXPECT_NE(dot.find("t0 -> m0"), std::string::npos);  // write: task -> mem
  EXPECT_NE(dot.find("m0 -> t1"), std::string::npos);  // read: mem -> task
}

TEST(DotExport, ChannelsCarryLabels) {
  tg::TaskGraph g("chan");
  tg::Program s;
  s.load_imm(0, 1).send(0, 0).halt();
  tg::Program r;
  r.recv(0, 0).halt();
  const auto a = g.add_task("A", s, 1);
  const auto b = g.add_task("B", r, 1);
  g.add_channel("c7", 16, a, b);
  const std::string dot = tg::to_dot(g);
  EXPECT_NE(dot.find("t0 -> t1 [label=\"c7\"]"), std::string::npos);
}

}  // namespace
}  // namespace rcarb
