// Graceful-degradation subsystem: exhaustive model checks of the
// self-checking arbiter variants (every reachable Fig. 5 state, every
// single-bit upset), behavioral-vs-netlist equivalence including the
// `error` net, the K-in-W strike classifier, the group-move remap
// planners, reconfiguration pricing, and end-to-end quarantine/remap
// campaigns in the system simulator.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "core/generator.hpp"
#include "core/insertion.hpp"
#include "core/policy.hpp"
#include "core/rr_fsm.hpp"
#include "core/selfcheck.hpp"
#include "degrade/degrade.hpp"
#include "fault/fault.hpp"
#include "netlist/simulator.hpp"
#include "rcsim/system_sim.hpp"
#include "support/rng.hpp"
#include "synth/encoding.hpp"
#include "synth/flow.hpp"

namespace rcarb {
namespace {

using core::CheckMode;
using core::RoundRobinArbiter;
using core::SelfCheckingArbiter;
using tg::Program;
using tg::TaskGraph;
using tg::TaskId;

// ===================================================== behavioral model check

struct ScParam {
  int n;
  CheckMode mode;
};

void replay(SelfCheckingArbiter& a, const std::vector<std::uint64_t>& w) {
  for (const std::uint64_t req : w) a.step(req);
}

/// Breadth-first walk of the fault-free state space: one witness request
/// sequence per reachable state (keyed by copy-0 register; the copies
/// agree fault-free).  Exhaustive — every request vector is tried from
/// every discovered state.
std::vector<std::vector<std::uint64_t>> reachable_witnesses(int n,
                                                            CheckMode mode) {
  std::map<std::uint64_t, std::vector<std::uint64_t>> seen;
  std::deque<std::vector<std::uint64_t>> work;
  {
    SelfCheckingArbiter a(n, mode);
    seen.emplace(a.state_bits(0), std::vector<std::uint64_t>{});
  }
  work.emplace_back();
  const std::uint64_t reqs = 1ull << n;
  while (!work.empty()) {
    const std::vector<std::uint64_t> w = work.front();
    work.pop_front();
    for (std::uint64_t req = 0; req < reqs; ++req) {
      SelfCheckingArbiter a(n, mode);
      replay(a, w);
      a.step(req);
      const std::uint64_t s = a.state_bits(0);
      if (seen.count(s) != 0) continue;
      std::vector<std::uint64_t> w2 = w;
      w2.push_back(req);
      seen.emplace(s, w2);
      work.push_back(std::move(w2));
    }
  }
  std::vector<std::vector<std::uint64_t>> out;
  out.reserve(seen.size());
  for (const auto& [s, w] : seen) out.push_back(w);
  return out;
}

class SelfCheckModel : public ::testing::TestWithParam<ScParam> {};

TEST_P(SelfCheckModel, EveryReachableStateKeepsMutualExclusion) {
  const auto [n, mode] = GetParam();
  const auto states = reachable_witnesses(n, mode);
  // The Fig. 5 FSM has exactly 2N states (Fi and Ci); all are reachable.
  EXPECT_EQ(states.size(), 2 * static_cast<std::size_t>(n));
  for (const auto& w : states) {
    for (std::uint64_t req = 0; req < (1ull << n); ++req) {
      SelfCheckingArbiter a(n, mode);
      replay(a, w);
      for (int c = 0; c < a.num_copies(); ++c)
        ASSERT_EQ(a.state_bits(c), a.state_bits(0))
            << "fault-free copies diverged";
      const int g = a.step(req);
      const std::uint64_t mask = a.last_grant_mask();
      ASSERT_FALSE(a.error()) << "comparator fired without a fault";
      ASSERT_LE(std::popcount(mask), 1) << "mutual exclusion violated";
      ASSERT_EQ(mask & ~req, 0u) << "granted a non-requester";
      ASSERT_EQ(g >= 0 ? (1ull << g) : 0ull, mask);
    }
  }
}

TEST_P(SelfCheckModel, MatchesThePlainArbiterFaultFree) {
  const auto [n, mode] = GetParam();
  SelfCheckingArbiter sc(n, mode);
  RoundRobinArbiter plain(n);
  Rng rng(1234 + static_cast<std::uint64_t>(n));
  for (int cyc = 0; cyc < 1000; ++cyc) {
    const std::uint64_t req = rng.next_below(1ull << n);
    EXPECT_EQ(sc.step(req), plain.step(req)) << "cycle " << cyc;
    EXPECT_EQ(sc.last_grant_mask(), plain.last_grant_mask());
    EXPECT_FALSE(sc.error());
  }
  EXPECT_EQ(sc.error_cycles(), 0u);
  EXPECT_EQ(sc.resyncs(), 0u);
}

TEST_P(SelfCheckModel, StarvationBoundedByNMinusOneFromEveryState) {
  const auto [n, mode] = GetParam();
  for (const auto& w : reachable_witnesses(n, mode)) {
    SelfCheckingArbiter a(n, mode);
    replay(a, w);
    // All ports contend; each grantee finishes a one-cycle burst and stops
    // requesting.  Before any port could be served twice, every other port
    // must be served once (the N-1 bound) — and the whole rotation fits in
    // a small constant number of cycles per burst.
    std::uint64_t req = (1ull << n) - 1;
    std::vector<char> served(static_cast<std::size_t>(n), 0);
    int steps = 0;
    while (req != 0) {
      ASSERT_LT(steps++, 4 * n + 4) << "starvation bound blown";
      const int g = a.step(req);
      if (g < 0) continue;
      ASSERT_FALSE(served[static_cast<std::size_t>(g)])
          << "port " << g << " served twice before others were served once";
      served[static_cast<std::size_t>(g)] = 1;
      req &= ~(1ull << g);
    }
  }
}

TEST_P(SelfCheckModel, EverySingleBitUpsetRecoversOrRaisesErrorInOneClock) {
  const auto [n, mode] = GetParam();
  const int bits = 2 * n;
  const std::uint64_t all = (1ull << n) - 1;
  const int copies = mode == CheckMode::kDuplicate ? 2 : 3;
  for (const auto& w : reachable_witnesses(n, mode)) {
    for (int c = 0; c < copies; ++c) {
      for (int b = 0; b < bits; ++b) {
        for (const std::uint64_t req : {std::uint64_t{0}, all}) {
          SelfCheckingArbiter a(n, mode);
          SelfCheckingArbiter ref(n, mode);  // uncorrupted twin
          replay(a, w);
          replay(ref, w);
          a.inject_bit_flip(c, b);
          const int g = a.step(req);
          const int gr = ref.step(req);
          ASSERT_TRUE(a.error())
              << "upset copy " << c << " bit " << b
              << " must raise error within 1 clock";
          if (mode == CheckMode::kDuplicate) {
            // Fail-safe: a suspect DMR arbiter grants nobody.
            ASSERT_EQ(g, -1);
            ASSERT_EQ(a.last_grant_mask(), 0u);
          } else {
            // TMR outvotes the minority with no grant gap.
            ASSERT_EQ(g, gr);
            ASSERT_EQ(a.last_grant_mask(), ref.last_grant_mask());
            ASSERT_EQ(a.state_bits(c), ref.state_bits(0))
                << "minority copy not rewritten at the clock edge";
          }
          // DMR always reloads on error; a TMR minority may converge via
          // the transition function itself (e.g. a two-hot state whose
          // extra bit dies at the edge), so only the detection count is
          // guaranteed there.
          if (mode == CheckMode::kDuplicate) ASSERT_GE(a.resyncs(), 1u);
          ASSERT_GE(a.error_cycles(), 1u);
          // One clock later the arbiter is clean again.
          a.step(all);
          ASSERT_FALSE(a.error()) << "recovery took more than 1 clock";
          for (int c2 = 0; c2 < copies; ++c2)
            ASSERT_EQ(a.state_bits(c2), a.state_bits(0));
        }
      }
    }
  }
}

TEST_P(SelfCheckModel, LatchUpPinsTheErrorOutputUntilCleared) {
  const auto [n, mode] = GetParam();
  const std::uint64_t all = (1ull << n) - 1;
  SelfCheckingArbiter a(n, mode);
  a.step(all);
  a.step(0);
  a.latch_up(0);
  EXPECT_TRUE(a.latched());
  // Walk the healthy copies away from the frozen one, then observe a
  // persistent comparator: neither resync nor reset clears a latch-up.
  int error_steps = 0;
  for (int cyc = 0; cyc < 20; ++cyc) {
    a.step(cyc % 2 == 0 ? all : all >> 1);
    if (a.error()) ++error_steps;
  }
  // n >= 2 pins the comparator almost every cycle; n = 1's two-state space
  // revisits the frozen state every other cycle, so the floor is half the
  // steps — still recurring evidence, which is all the K-in-W classifier
  // needs.
  EXPECT_GE(error_steps, 10) << "a latched copy must keep striking";
  a.reset();
  a.step(all);
  a.step(0);
  EXPECT_TRUE(a.error()) << "reset must not clear a latch-up";
  a.clear_latch_up();  // reconfiguration of the arbiter's region
  a.reset();
  a.step(all);
  EXPECT_FALSE(a.error());
}

INSTANTIATE_TEST_SUITE_P(
    Exhaustive, SelfCheckModel,
    ::testing::Values(ScParam{1, CheckMode::kDuplicate},
                      ScParam{2, CheckMode::kDuplicate},
                      ScParam{3, CheckMode::kDuplicate},
                      ScParam{4, CheckMode::kDuplicate},
                      ScParam{5, CheckMode::kDuplicate},
                      ScParam{6, CheckMode::kDuplicate},
                      ScParam{1, CheckMode::kTmr}, ScParam{2, CheckMode::kTmr},
                      ScParam{3, CheckMode::kTmr}, ScParam{4, CheckMode::kTmr},
                      ScParam{5, CheckMode::kTmr},
                      ScParam{6, CheckMode::kTmr}));

// ================================================= netlist equivalence

class SelfCheckNetlist : public ::testing::TestWithParam<ScParam> {};

TEST_P(SelfCheckNetlist, NetlistMatchesBehavioralModelUnderUpsets) {
  const auto [n, mode] = GetParam();
  const synth::Fsm fsm = core::build_round_robin_fsm(n);
  const synth::StateCodes codes =
      synth::encode_states(fsm, synth::Encoding::kOneHot);
  const std::uint64_t reset = codes.code[fsm.reset_state()];
  const aig::Aig comb = core::build_self_checking_aig(n, codes, mode, reset);
  const int copies = mode == CheckMode::kDuplicate ? 2 : 3;
  std::uint64_t full_reset = 0;
  for (int c = 0; c < copies; ++c)
    full_reset |= reset << (c * codes.num_bits);
  const synth::SynthResult syn = synth::finish_machine_synthesis(
      comb, n, copies * codes.num_bits, full_reset, {});

  netlist::Simulator sim(syn.netlist);
  SelfCheckingArbiter beh(n, mode);
  // Resolve port names once — the cycle loop must not hash strings.
  std::vector<netlist::NetId> req_net, grant_net;
  for (int i = 0; i < n; ++i) {
    req_net.push_back(*syn.netlist.find_net("req" + std::to_string(i)));
    grant_net.push_back(
        *syn.netlist.find_net("grant" + std::to_string(i)));
  }
  const netlist::NetId error_net = *syn.netlist.find_net("error");
  std::vector<std::vector<netlist::NetId>> state_net(
      static_cast<std::size_t>(copies));
  for (int c = 0; c < copies; ++c)
    for (int b = 0; b < codes.num_bits; ++b) {
      const std::string name =
          (c == 0 ? "state" : "c" + std::to_string(c) + "_state") +
          std::to_string(b);
      state_net[static_cast<std::size_t>(c)].push_back(
          *syn.netlist.find_net(name));
    }

  Rng rng(9000 + static_cast<std::uint64_t>(n) * 8 +
          static_cast<std::uint64_t>(mode));
  for (int cyc = 0; cyc < 1200; ++cyc) {
    if (cyc % 37 == 17) {
      // Poke one register bit in one copy: the behavioral twin takes the
      // same SEU, and both must agree on the `error` net from here on.
      const int c = static_cast<int>(rng.next_below(
          static_cast<std::uint64_t>(copies)));
      const int b = static_cast<int>(rng.next_below(
          static_cast<std::uint64_t>(codes.num_bits)));
      beh.inject_bit_flip(c, b);
      const netlist::NetId net =
          state_net[static_cast<std::size_t>(c)][static_cast<std::size_t>(b)];
      sim.poke_register(net, !sim.get(net));
    }
    const std::uint64_t req = rng.next_below(1ull << n);
    for (int i = 0; i < n; ++i)
      sim.set_input(req_net[static_cast<std::size_t>(i)], ((req >> i) & 1) != 0);
    sim.settle();
    beh.step(req);
    for (int i = 0; i < n; ++i)
      ASSERT_EQ(sim.get(grant_net[static_cast<std::size_t>(i)]),
                ((beh.last_grant_mask() >> i) & 1) != 0)
          << "grant" << i << " diverged at cycle " << cyc;
    ASSERT_EQ(sim.get(error_net), beh.error())
        << "`error` net diverged at cycle " << cyc;
    sim.clock();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SelfCheckNetlist,
    ::testing::Values(ScParam{2, CheckMode::kDuplicate},
                      ScParam{3, CheckMode::kDuplicate},
                      ScParam{4, CheckMode::kDuplicate},
                      ScParam{2, CheckMode::kTmr}, ScParam{3, CheckMode::kTmr},
                      ScParam{4, CheckMode::kTmr}));

TEST(SelfCheckPrechar, RedundancyIsPricedAlongsideThePlainVariant) {
  const auto& plain = core::generate_round_robin_cached(
      4, synth::FlowKind::kExpressLike, synth::Encoding::kOneHot);
  const auto& dmr = core::generate_self_checking_cached(
      4, CheckMode::kDuplicate, synth::Encoding::kOneHot);
  const auto& tmr = core::generate_self_checking_cached(
      4, CheckMode::kTmr, synth::Encoding::kOneHot);
  EXPECT_GT(dmr.chars.clbs, plain.chars.clbs);
  EXPECT_GT(tmr.chars.clbs, dmr.chars.clbs);
  EXPECT_EQ(dmr.chars.ffs, 2u * 8u) << "two one-hot copies of 2n bits";
  EXPECT_EQ(tmr.chars.ffs, 3u * 8u);
  EXPECT_GT(dmr.chars.fmax_mhz, 0.0);
  EXPECT_TRUE(dmr.synth.netlist.find_net("error").has_value());
  EXPECT_TRUE(tmr.synth.netlist.find_net("error").has_value());
}

// ======================================================== strike classifier

TEST(QuarantineRecord, RepairCyclesReadsZeroForOpenRecords) {
  // A record queried mid-quarantine has no restored_cycle yet; the
  // subtraction used to wrap to a huge u64 and poison MTTR averages.
  degrade::QuarantineRecord rec;
  rec.classified_cycle = 100;
  EXPECT_EQ(rec.repair_cycles(), 0u) << "open record: restored unset";
  rec.restored_cycle = 100;
  EXPECT_EQ(rec.repair_cycles(), 0u) << "zero-length repair";
  rec.restored_cycle = 150;
  EXPECT_EQ(rec.repair_cycles(), 50u);
}

TEST(ResourceSupervisor, LifecycleDrainsPricesAndRestores) {
  degrade::DegradeOptions opt;
  opt.enabled = true;
  degrade::ResourceSupervisor sup(2, opt);
  using T = degrade::ResourceSupervisor::Transition;

  // K-1 strikes classify nothing; the K-th quarantines.
  EXPECT_EQ(sup.strike(0, 10, degrade::StrikeSource::kSelfCheckError),
            T::kNone);
  EXPECT_EQ(sup.strike(0, 11, degrade::StrikeSource::kSelfCheckError),
            T::kNone);
  EXPECT_EQ(sup.strike(0, 12, degrade::StrikeSource::kSelfCheckError),
            T::kQuarantined);
  EXPECT_FALSE(sup.serving(0));
  EXPECT_TRUE(sup.serving(1));
  EXPECT_EQ(sup.num_serving(), 1);
  // Further evidence against the quarantined resource never re-classifies.
  EXPECT_EQ(sup.strike(0, 13, degrade::StrikeSource::kSelfCheckError),
            T::kNone);

  // Not drained: the supervisor waits (until the drain_timeout deadline).
  EXPECT_EQ(sup.advance(0, 14, /*drained=*/false, 4, CheckMode::kNone),
            T::kNone);
  EXPECT_EQ(sup.advance(0, 15, /*drained=*/true, 4, CheckMode::kNone),
            T::kDrained);
  // The reconfiguration stall is priced, not instant.
  std::uint64_t cycle = 16;
  while (sup.advance(0, cycle, true, 4, CheckMode::kNone) != T::kRestored) {
    ++cycle;
    ASSERT_LT(cycle, 10'000u) << "restore never happened";
  }
  EXPECT_TRUE(sup.serving(0));
  ASSERT_EQ(sup.records().size(), 1u);
  const auto& rec = sup.records().front();
  EXPECT_FALSE(rec.drain_aborted);
  EXPECT_GT(rec.repair_cycles(), 0u);
}

TEST(StrikeTracker, KthStrikeWithinTheWindowClassifies) {
  degrade::StrikeTracker t(4, /*strikes=*/3, /*window=*/10);
  EXPECT_FALSE(t.strike(2, 5, degrade::StrikeSource::kBankFailure));
  EXPECT_FALSE(t.strike(2, 6, degrade::StrikeSource::kBankFailure));
  EXPECT_TRUE(t.strike(2, 7, degrade::StrikeSource::kBankFailure));
  EXPECT_EQ(t.total(), 3u);
  EXPECT_EQ(t.count(degrade::StrikeSource::kBankFailure), 3u);
}

TEST(StrikeTracker, IsolatedTransientsNeverAccumulate) {
  degrade::StrikeTracker t(1, /*strikes=*/2, /*window=*/10);
  // One strike every 11 cycles: each window holds only the newest one.
  for (std::uint64_t cyc = 0; cyc < 110; cyc += 11)
    EXPECT_FALSE(t.strike(0, cyc, degrade::StrikeSource::kWatchdogTrip))
        << "cycle " << cyc;
}

TEST(StrikeTracker, WindowBoundaryIsExclusiveOfTheOldestEdge) {
  // Window [cycle - W + 1, cycle]: a strike exactly W cycles before the
  // newest has expired.
  degrade::StrikeTracker t(1, /*strikes=*/2, /*window=*/10);
  EXPECT_FALSE(t.strike(0, 0, degrade::StrikeSource::kChannelFailure));
  EXPECT_FALSE(t.strike(0, 10, degrade::StrikeSource::kChannelFailure));
  EXPECT_TRUE(t.strike(0, 19, degrade::StrikeSource::kChannelFailure));
}

TEST(StrikeTracker, ResourcesAreIndependentAndClearable) {
  degrade::StrikeTracker t(3, /*strikes=*/2, /*window=*/100);
  EXPECT_FALSE(t.strike(0, 1, degrade::StrikeSource::kSelfCheckError));
  EXPECT_FALSE(t.strike(1, 2, degrade::StrikeSource::kSelfCheckError));
  t.clear(0);
  EXPECT_FALSE(t.strike(0, 3, degrade::StrikeSource::kSelfCheckError))
      << "cleared history must not count";
  EXPECT_TRUE(t.strike(1, 4, degrade::StrikeSource::kSelfCheckError));
}

// ========================================================== remap planners

TEST(BankRemap, GroupMovesToTheTightestFittingSurvivor) {
  const std::vector<std::size_t> seg_bytes = {100, 50, 30};
  const std::vector<int> bank_of_segment = {0, 0, 1};
  const std::vector<std::size_t> free_bytes = {0, 200, 160};
  const auto plan = degrade::plan_bank_remap(seg_bytes, bank_of_segment,
                                             free_bytes, /*dead=*/0,
                                             {false, false, false});
  EXPECT_TRUE(plan.feasible);
  EXPECT_EQ(plan.target_bank, 2) << "best-fit: 160 is the tightest >= 150";
  EXPECT_EQ(plan.moved_segments, (std::vector<int>{0, 1}));
  EXPECT_EQ(plan.moved_bytes, 150u);
}

TEST(BankRemap, SkipsFailedSurvivorsAndReportsExhaustion) {
  const std::vector<std::size_t> seg_bytes = {100};
  const std::vector<int> bank_of_segment = {0};
  const auto skip = degrade::plan_bank_remap(seg_bytes, bank_of_segment,
                                             {0, 120, 110}, 0,
                                             {false, false, true});
  EXPECT_TRUE(skip.feasible);
  EXPECT_EQ(skip.target_bank, 1) << "failed bank 2 must be skipped";

  const auto none = degrade::plan_bank_remap(seg_bytes, bank_of_segment,
                                             {0, 50, 110}, 0,
                                             {false, false, true});
  EXPECT_FALSE(none.feasible) << "no survivor can hold 100 bytes";
  EXPECT_EQ(none.target_bank, -1);
}

TEST(BankRemap, EmptyDeadBankRetiresForFree) {
  const auto plan = degrade::plan_bank_remap({40}, {1}, {10, 0}, 0, {});
  EXPECT_TRUE(plan.feasible);
  EXPECT_TRUE(plan.moved_segments.empty());
  EXPECT_EQ(plan.target_bank, -1);
}

TEST(ChannelRemap, PicksTheLeastLoadedSurvivor) {
  const std::vector<int> channel_to_phys = {0, 0, 1, 2, 2};
  const auto plan = degrade::plan_channel_remap(channel_to_phys, 3, 0,
                                                {false, false, false});
  EXPECT_TRUE(plan.feasible);
  EXPECT_EQ(plan.target_phys, 1) << "1 logical channel < 2 on phys 2";
  EXPECT_EQ(plan.moved_channels, (std::vector<int>{0, 1}));

  const auto skip = degrade::plan_channel_remap(channel_to_phys, 3, 0,
                                                {false, true, false});
  EXPECT_TRUE(skip.feasible);
  EXPECT_EQ(skip.target_phys, 2);

  const auto none = degrade::plan_channel_remap(channel_to_phys, 3, 0,
                                                {false, true, true});
  EXPECT_FALSE(none.feasible);
}

TEST(ReconfigPricing, ScalesWithTheMemoizedClbCount) {
  degrade::DegradeOptions opt;
  opt.reconfig_base_cycles = 8;
  opt.reconfig_cycles_per_clb = 4;
  EXPECT_EQ(degrade::arbiter_reconfig_cycles(opt, 0, CheckMode::kNone), 8u)
      << "n < 2 needs no arbiter: base cost only";
  EXPECT_EQ(degrade::arbiter_reconfig_cycles(opt, 1, CheckMode::kNone), 8u);
  const auto& plain = core::generate_round_robin_cached(
      4, synth::FlowKind::kExpressLike, synth::Encoding::kOneHot);
  EXPECT_EQ(degrade::arbiter_reconfig_cycles(opt, 4, CheckMode::kNone),
            8u + 4u * plain.chars.clbs);
  EXPECT_GT(degrade::arbiter_reconfig_cycles(opt, 4, CheckMode::kTmr),
            degrade::arbiter_reconfig_cycles(opt, 4, CheckMode::kNone))
      << "redundant copies cost reconfiguration time too";
  EXPECT_EQ(degrade::arbiter_reconfig_cycles(opt, 25, CheckMode::kNone),
            degrade::arbiter_reconfig_cycles(opt, 20, CheckMode::kNone))
      << "contention sets beyond 20 are priced at the widest arbiter";
}

// ================================================= end-to-end system tests

/// Two banks, four tasks (two per bank), every store checked against a
/// fault-free reference run.  Each task writes `words` distinct values
/// into its half of its segment with compute gaps so bursts straddle the
/// fault cycle.
struct TwoBankRig {
  TaskGraph graph{"degrade-banks"};
  core::Binding binding;
  std::vector<TaskId> tasks;

  explicit TwoBankRig(int words = 5) {
    graph.add_segment("s0", 64, 2 * static_cast<std::size_t>(words));
    graph.add_segment("s1", 64, 2 * static_cast<std::size_t>(words));
    for (int t = 0; t < 4; ++t) {
      const int seg = t / 2;       // tasks 0,1 -> s0; 2,3 -> s1
      const int half = t % 2;      // own half of the segment
      Program p;
      p.load_imm(0, 0);
      for (int k = 0; k < words; ++k) {
        p.load_imm(1, 100 * (t + 1) + k)
            .store(seg, 0, 1, half * words + k)
            .compute(2);
      }
      p.halt();
      tasks.push_back(
          graph.add_task("t" + std::to_string(t), p, 1));
    }
    binding.task_to_pe = {0, 1, 2, 3};
    binding.segment_to_bank = {0, 1};
    binding.channel_to_phys = {};
    binding.num_banks = 2;
    binding.bank_names = {"B0", "B1"};
  }
};

rcsim::SimOptions degrade_options() {
  rcsim::SimOptions so;
  so.strict = false;
  so.no_progress_window = 400;
  so.degrade.enabled = true;
  so.degrade.strikes = 3;
  so.degrade.strike_window = 64;
  so.degrade.drain_timeout = 16;
  so.degrade.reconfig_base_cycles = 4;
  so.degrade.reconfig_cycles_per_clb = 0;  // keep test runs short
  return so;
}

TEST(DegradeEndToEnd, BankFailureQuarantinesRemapsAndPreservesData) {
  TwoBankRig rig;
  const auto ins = core::insert_arbitration(rig.graph, rig.binding, {});

  // Fault-free reference.
  rcsim::SystemSimulator ref(ins.graph, rig.binding, ins.plan,
                             degrade_options());
  const rcsim::SimResult ref_r = ref.run(rig.tasks);
  ASSERT_FALSE(ref_r.deadlocked);
  ASSERT_EQ(ref_r.quarantined, 0u);

  fault::FaultEvent dead;
  dead.kind = fault::FaultKind::kBankFailure;
  dead.cycle = 10;
  dead.bank = 1;
  rcsim::SimOptions so = degrade_options();
  so.faults = {dead};
  rcsim::SystemSimulator sim(ins.graph, rig.binding, ins.plan, so);
  const rcsim::SimResult r = sim.run(rig.tasks);

  EXPECT_FALSE(r.deadlocked);
  EXPECT_EQ(r.count(rcsim::DiagKind::kDeadlock), 0u);
  EXPECT_EQ(r.count(rcsim::DiagKind::kNoProgress), 0u);
  EXPECT_EQ(r.quarantined, 1u);
  EXPECT_EQ(r.remaps, 1u);
  ASSERT_EQ(r.quarantine_events.size(), 1u);
  const degrade::QuarantineRecord& rec = r.quarantine_events[0];
  EXPECT_EQ(rec.resource, 1) << "bank 1's unified resource id";
  EXPECT_EQ(rec.state, degrade::QuarantineState::kRemapped);
  EXPECT_EQ(rec.remap_target, 0) << "the only survivor is bank 0";
  // Classification within K strikes of W cycles each of the fault.
  EXPECT_LE(rec.classified_cycle,
            dead.cycle + static_cast<std::uint64_t>(so.degrade.strikes) *
                             so.degrade.strike_window);
  EXPECT_GE(rec.restored_cycle, rec.drained_cycle);
  EXPECT_GT(rec.repair_cycles(), 0u);
  // Every transfer completed with correct data despite the dead bank.
  for (const TaskId t : rig.tasks) {
    EXPECT_TRUE(r.tasks[static_cast<std::size_t>(t)].ran);
    EXPECT_GT(r.tasks[static_cast<std::size_t>(t)].finish_cycle, 0u);
  }
  EXPECT_EQ(sim.segment_data(0), ref.segment_data(0));
  EXPECT_EQ(sim.segment_data(1), ref.segment_data(1));
  EXPECT_EQ(r.bank_conflicts, 0u);
  EXPECT_EQ(r.protocol_violations, 0u);
}

TEST(DegradeEndToEnd, ReconfigurationPreservesTheConfiguredArbiterKind) {
  // Regression: the post-quarantine rebuild used to hand-roll a flat
  // round-robin arbiter, silently dropping the configured structure on
  // exactly the reconfiguration path.  Both construction sites now build
  // through core::make_system_arbiter, so the regenerated arbiter keeps
  // the explicit SimOptions kind — and the run still preserves data.
  TwoBankRig rig;
  const auto ins = core::insert_arbitration(rig.graph, rig.binding, {});
  fault::FaultEvent dead;
  dead.kind = fault::FaultKind::kBankFailure;
  dead.cycle = 10;
  dead.bank = 1;
  rcsim::SimOptions so = degrade_options();
  so.faults = {dead};
  so.arbiter_kind = core::ArbiterChoice::kPrefix;
  rcsim::SystemSimulator sim(ins.graph, rig.binding, ins.plan, so);
  const rcsim::SimResult r = sim.run(rig.tasks);
  EXPECT_FALSE(r.deadlocked);
  EXPECT_EQ(r.remaps, 1u);
  ASSERT_GT(r.arbiters.size(), ins.plan.arbiters.size())
      << "the remap must regenerate an arbiter over the survivor";
  for (const rcsim::ArbiterStats& st : r.arbiters)
    EXPECT_EQ(st.kind, core::ArbiterKind::kPrefix) << st.resource_name;

  // The default (kAuto) follows the plan's per-instance resolved kind
  // into the regenerated arbiter instead of resetting it to flat.
  core::InsertionOptions io;
  io.arbiter_kind = core::ArbiterChoice::kHierarchical;
  const auto ins_h = core::insert_arbitration(rig.graph, rig.binding, io);
  rcsim::SimOptions follow = degrade_options();
  follow.faults = {dead};
  rcsim::SystemSimulator sim_h(ins_h.graph, rig.binding, ins_h.plan, follow);
  const rcsim::SimResult rh = sim_h.run(rig.tasks);
  EXPECT_EQ(rh.remaps, 1u);
  ASSERT_GT(rh.arbiters.size(), ins_h.plan.arbiters.size());
  for (const rcsim::ArbiterStats& st : rh.arbiters)
    EXPECT_EQ(st.kind, core::ArbiterKind::kHierarchical) << st.resource_name;

  // Data correctness is unchanged by the structure.
  rcsim::SystemSimulator ref(ins.graph, rig.binding, ins.plan,
                             degrade_options());
  (void)ref.run(rig.tasks);
  EXPECT_EQ(sim.segment_data(0), ref.segment_data(0));
  EXPECT_EQ(sim.segment_data(1), ref.segment_data(1));
}

TEST(DegradeEndToEnd, AvailabilityBeatsTheStallOnlyBaseline) {
  TwoBankRig rig;
  const auto ins = core::insert_arbitration(rig.graph, rig.binding, {});
  fault::FaultEvent dead;
  dead.kind = fault::FaultKind::kBankFailure;
  dead.cycle = 10;
  dead.bank = 1;

  rcsim::SimOptions with = degrade_options();
  with.faults = {dead};
  rcsim::SystemSimulator sim(ins.graph, rig.binding, ins.plan, with);
  const rcsim::SimResult r = sim.run(rig.tasks);

  rcsim::SimOptions without = degrade_options();
  without.degrade.enabled = false;
  without.faults = {dead};
  rcsim::SystemSimulator base_sim(ins.graph, rig.binding, ins.plan, without);
  const rcsim::SimResult base = base_sim.run(rig.tasks);

  EXPECT_TRUE(base.deadlocked)
      << "stall-only: the fault wedges the run (that is the baseline)";
  EXPECT_FALSE(r.deadlocked);
  const double avail =
      static_cast<double>(r.serving_cycles) / static_cast<double>(r.cycles);
  const double base_avail = static_cast<double>(base.serving_cycles) /
                            static_cast<double>(base.cycles);
  EXPECT_GT(avail, base_avail);
  EXPECT_LT(r.serving_cycles, r.cycles)
      << "the quarantine window itself is degraded time";
}

/// Two physical channels, two logical channels each (so both ends are
/// arbitrated), producers feed consumers which store what they received.
struct TwoPhysRig {
  TaskGraph graph{"degrade-channels"};
  core::Binding binding;
  std::vector<TaskId> tasks;

  explicit TwoPhysRig(int words = 4) {
    for (int c = 0; c < 4; ++c)
      graph.add_segment("out" + std::to_string(c), 64,
                        static_cast<std::size_t>(words));
    std::vector<TaskId> prods, conss;
    for (int c = 0; c < 4; ++c) {
      Program prod;
      for (int k = 0; k < words; ++k)
        prod.load_imm(1, 1000 * (c + 1) + k).send(c, 1).compute(2);
      prod.halt();
      Program cons;
      cons.load_imm(0, 0);
      for (int k = 0; k < words; ++k)
        cons.recv(1, c).store(c, 0, 1, k);
      cons.halt();
      prods.push_back(graph.add_task("p" + std::to_string(c), prod, 1));
      conss.push_back(graph.add_task("q" + std::to_string(c), cons, 1));
    }
    for (int c = 0; c < 4; ++c)
      graph.add_channel("ch" + std::to_string(c), 16, prods[c],
                        conss[c]);
    tasks = prods;
    tasks.insert(tasks.end(), conss.begin(), conss.end());
    binding.task_to_pe = {0, 1, 2, 3, 4, 5, 6, 7};
    binding.segment_to_bank = {0, 0, 0, 0};
    binding.num_banks = 1;
    binding.bank_names = {"MEM"};
    binding.channel_to_phys = {0, 0, 1, 1};
    binding.num_phys_channels = 2;
    binding.phys_channel_names = {"X0", "X1"};
  }
};

TEST(DegradeEndToEnd, StuckChannelRemergesOntoTheSurvivor) {
  TwoPhysRig rig;
  const auto ins = core::insert_arbitration(rig.graph, rig.binding, {});

  rcsim::SystemSimulator ref(ins.graph, rig.binding, ins.plan,
                             degrade_options());
  const rcsim::SimResult ref_r = ref.run(rig.tasks);
  ASSERT_FALSE(ref_r.deadlocked);

  fault::FaultEvent dead;
  dead.kind = fault::FaultKind::kPermanentStuckChannel;
  dead.cycle = 6;
  dead.channel = 0;  // physical channel X0
  rcsim::SimOptions so = degrade_options();
  so.faults = {dead};
  rcsim::SystemSimulator sim(ins.graph, rig.binding, ins.plan, so);
  const rcsim::SimResult r = sim.run(rig.tasks);

  EXPECT_FALSE(r.deadlocked);
  EXPECT_EQ(r.quarantined, 1u);
  EXPECT_EQ(r.remaps, 1u);
  ASSERT_EQ(r.quarantine_events.size(), 1u);
  EXPECT_EQ(r.quarantine_events[0].resource, 1) << "num_banks + phys 0";
  EXPECT_EQ(r.quarantine_events[0].remap_target, 2) << "num_banks + phys 1";
  EXPECT_EQ(r.channel_conflicts, 0u)
      << "movers and the survivor's own traffic must share one arbiter";
  EXPECT_EQ(r.protocol_violations, 0u);
  for (int c = 0; c < 4; ++c)
    EXPECT_EQ(sim.segment_data(c), ref.segment_data(c))
        << "consumer " << c << " saw wrong data";
}

TEST(DegradeEndToEnd, NoSurvivorMeansStallWithDiagnosticNotDeadlock) {
  // One physical channel only: when it dies there is nowhere to remap.
  TwoPhysRig rig;
  rig.binding.channel_to_phys = {0, 0, 0, 0};
  rig.binding.num_phys_channels = 1;
  rig.binding.phys_channel_names = {"X0"};
  const auto ins = core::insert_arbitration(rig.graph, rig.binding, {});

  fault::FaultEvent dead;
  dead.kind = fault::FaultKind::kPermanentStuckChannel;
  dead.cycle = 6;
  dead.channel = 0;
  rcsim::SimOptions so = degrade_options();
  so.no_progress_window = 200;
  so.faults = {dead};
  rcsim::SystemSimulator sim(ins.graph, rig.binding, ins.plan, so);
  const rcsim::SimResult r = sim.run(rig.tasks);

  EXPECT_EQ(r.quarantined, 1u);
  EXPECT_EQ(r.remaps, 0u);
  EXPECT_EQ(r.count(rcsim::DiagKind::kCapacityExhausted), 1u);
  ASSERT_EQ(r.quarantine_events.size(), 1u);
  EXPECT_EQ(r.quarantine_events[0].state,
            degrade::QuarantineState::kCapacityExhausted);
  // The run stalls (that is unavoidable) but stops *cleanly*: attributed,
  // no corruption, no protocol violations.
  EXPECT_TRUE(r.deadlocked);
  EXPECT_EQ(r.count(rcsim::DiagKind::kDeadlock), 0u);
  EXPECT_EQ(r.channel_conflicts, 0u);
  EXPECT_EQ(r.bank_conflicts, 0u);
  EXPECT_EQ(r.protocol_violations, 0u);
}

TEST(DegradeEndToEnd, ArbiterLatchUpIsRepairedInPlace) {
  for (const CheckMode mode : {CheckMode::kDuplicate, CheckMode::kTmr}) {
    TwoBankRig rig;
    const auto ins = core::insert_arbitration(rig.graph, rig.binding, {});

    fault::FaultEvent latch;
    latch.kind = fault::FaultKind::kArbiterLatchup;
    latch.cycle = 6;
    latch.arbiter = 0;
    rcsim::SimOptions so = degrade_options();
    so.self_check = mode;
    so.faults = {latch};
    rcsim::SystemSimulator sim(ins.graph, rig.binding, ins.plan, so);
    const rcsim::SimResult r = sim.run(rig.tasks);

    EXPECT_FALSE(r.deadlocked) << core::to_string(mode);
    EXPECT_GT(r.self_check_errors, 0u)
        << "the pinned comparator is the evidence stream";
    EXPECT_EQ(r.quarantined, 1u) << core::to_string(mode);
    EXPECT_EQ(r.remaps, 1u) << core::to_string(mode);
    ASSERT_EQ(r.quarantine_events.size(), 1u);
    EXPECT_EQ(r.quarantine_events[0].remap_target,
              r.quarantine_events[0].resource)
        << "healthy guarded hardware: the arbiter regenerates in place";
    for (const TaskId t : rig.tasks)
      EXPECT_GT(r.tasks[static_cast<std::size_t>(t)].finish_cycle, 0u);
  }
}

TEST(DegradeEndToEnd, PlainArbitersCannotDetectALatchUp) {
  // The same latch-up without self-checking arbiters: no error wire means
  // no evidence, no quarantine — the system wedges.  This is the tentpole's
  // motivating contrast.
  TwoBankRig rig;
  const auto ins = core::insert_arbitration(rig.graph, rig.binding, {});
  fault::FaultEvent latch;
  latch.kind = fault::FaultKind::kArbiterLatchup;
  latch.cycle = 6;
  latch.arbiter = 0;
  rcsim::SimOptions so = degrade_options();
  so.self_check = CheckMode::kNone;
  so.faults = {latch};
  rcsim::SystemSimulator sim(ins.graph, rig.binding, ins.plan, so);
  const rcsim::SimResult r = sim.run(rig.tasks);
  EXPECT_TRUE(r.deadlocked);
  EXPECT_EQ(r.quarantined, 0u);
  EXPECT_EQ(r.self_check_errors, 0u);
}

TEST(DegradeEndToEnd, SelfCheckArbitersRideOutTransientSeusWithoutQuarantine) {
  // A one-shot SEU fires the comparator for one cycle; the K-in-W
  // classifier must NOT quarantine (that is the whole point of K > 1).
  TwoBankRig rig;
  const auto ins = core::insert_arbitration(rig.graph, rig.binding, {});
  fault::FaultEvent seu;
  seu.kind = fault::FaultKind::kFsmBitFlip;
  seu.cycle = 8;
  seu.arbiter = 0;
  seu.bit = 1;
  rcsim::SimOptions so = degrade_options();
  so.self_check = CheckMode::kDuplicate;
  so.faults = {seu};
  rcsim::SystemSimulator sim(ins.graph, rig.binding, ins.plan, so);
  const rcsim::SimResult r = sim.run(rig.tasks);
  EXPECT_FALSE(r.deadlocked);
  EXPECT_GE(r.self_check_errors, 1u) << "the upset must be detected";
  EXPECT_GE(r.self_check_resyncs, 1u) << "and repaired by the resync";
  EXPECT_EQ(r.quarantined, 0u) << "one strike must not classify";
  EXPECT_EQ(r.remaps, 0u);
}

TEST(DegradeEndToEnd, CampaignReportIsDeterministic) {
  // Two identical runs of the full quarantine/remap pipeline must agree on
  // every externally visible number (the bench's determinism contract).
  auto run_once = []() {
    TwoPhysRig rig;
    const auto ins = core::insert_arbitration(rig.graph, rig.binding, {});
    fault::FaultEvent dead;
    dead.kind = fault::FaultKind::kPermanentStuckChannel;
    dead.cycle = 6;
    dead.channel = 0;
    rcsim::SimOptions so = degrade_options();
    so.self_check = CheckMode::kTmr;
    so.faults = {dead};
    rcsim::SystemSimulator sim(ins.graph, rig.binding, ins.plan, so);
    return sim.run(rig.tasks);
  };
  const rcsim::SimResult a = run_once();
  const rcsim::SimResult b = run_once();
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.serving_cycles, b.serving_cycles);
  EXPECT_EQ(a.strikes, b.strikes);
  EXPECT_EQ(a.quarantined, b.quarantined);
  EXPECT_EQ(a.remaps, b.remaps);
  ASSERT_EQ(a.quarantine_events.size(), b.quarantine_events.size());
  for (std::size_t i = 0; i < a.quarantine_events.size(); ++i) {
    EXPECT_EQ(a.quarantine_events[i].classified_cycle,
              b.quarantine_events[i].classified_cycle);
    EXPECT_EQ(a.quarantine_events[i].restored_cycle,
              b.quarantine_events[i].restored_cycle);
  }
  EXPECT_EQ(a.diagnostics.size(), b.diagnostics.size());
}

TEST(DegradeEndToEnd, ElidedSoleClientJoinsTheSurvivorWithoutViolations) {
  // Two banks with one client each: the insertion pass elides both tasks'
  // protocol ops (no contention), so after bank 1 dies and its load lands
  // on bank 0 the joining task has no Acquire to replay.  The supervisor
  // must retrofit an implicit per-access Req/release — the merged bank is
  // arbitrated, data stays correct, and no protocol violation is charged.
  TaskGraph g("elided");
  g.add_segment("s0", 64, 8);
  g.add_segment("s1", 64, 8);
  Program w0, w1;
  w0.load_imm(0, 0);
  for (int k = 0; k < 8; ++k)
    w0.load_imm(1, 10 + k).store(0, 0, 1, k).compute(1);
  w0.halt();
  w1.load_imm(0, 0);
  for (int k = 0; k < 8; ++k)
    w1.load_imm(1, 20 + k).store(1, 0, 1, k).compute(1);
  w1.halt();
  const TaskId t0 = g.add_task("t0", w0, 1);
  const TaskId t1 = g.add_task("t1", w1, 1);
  core::Binding b;
  b.task_to_pe = {0, 1};
  b.segment_to_bank = {0, 1};
  b.num_banks = 2;
  b.bank_names = {"B0", "B1"};
  const auto ins = core::insert_arbitration(g, b, {});
  fault::FaultEvent dead;
  dead.kind = fault::FaultKind::kBankFailure;
  dead.cycle = 6;
  dead.bank = 1;
  rcsim::SimOptions so = degrade_options();
  so.self_check = CheckMode::kTmr;
  so.faults = {dead};
  rcsim::SystemSimulator sim(ins.graph, b, ins.plan, so);
  const rcsim::SimResult r = sim.run({t0, t1});
  EXPECT_EQ(r.quarantined, 1u);
  EXPECT_EQ(r.remaps, 1u);
  EXPECT_FALSE(r.deadlocked);
  EXPECT_EQ(r.protocol_violations, 0u);
  EXPECT_EQ(r.bank_conflicts, 0u);
  for (int k = 0; k < 8; ++k) {
    EXPECT_EQ(sim.segment_data(0)[static_cast<std::size_t>(k)], 10 + k);
    EXPECT_EQ(sim.segment_data(1)[static_cast<std::size_t>(k)], 20 + k);
  }
}

}  // namespace
}  // namespace rcarb
