// Fault-tolerant service engine: live injection, self-checking service
// arbiters, supervisor-driven quarantine/failover, and the request
// conservation invariant under every fault mix.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/arbiter_factory.hpp"
#include "fault/service_faults.hpp"
#include "service/service.hpp"
#include "support/check.hpp"

namespace rcarb::service {
namespace {

using fault::FaultEvent;
using fault::FaultKind;
using fault::ServiceFaultPlanOptions;

/// Small, fast configuration matching test_service's fixture: 2 resources
/// x 4 ports, 4-cycle service, saturation ~0.5 requests/cycle.
ServiceOptions ft_options() {
  ServiceOptions o;
  o.resources = 2;
  o.ports = 4;
  o.service_cycles = 4;
  o.queue_capacity = 8;
  o.policy = OverloadPolicy::kTailDrop;
  o.block_backlog_factor = 16;
  o.admit_queue_threshold = 4;
  o.retry.timeout = 128;
  o.arrivals.rate = 0.3;  // ~60% of capacity
  o.warmup_cycles = 1'000;
  o.measure_cycles = 6'000;
  o.seed = 99;
  return o;
}

/// The invariant the engine promises under every fault mix: corrupted /
/// failed / requeued work is non-terminal, so nothing is lost or
/// double-counted.
void expect_conserved(const ServiceStats& s, const std::string& what) {
  EXPECT_EQ(s.in_flight_at_start + s.offered,
            s.completed + s.timed_out + s.budget_exhausted + s.in_flight_at_end)
      << what << ": " << s.summarize_faults();
}

std::vector<FaultEvent> one_event(FaultKind kind, std::uint64_t cycle,
                                  int resource) {
  FaultEvent e;
  e.cycle = cycle;
  e.kind = kind;
  if (kind == FaultKind::kBankFailure) {
    e.bank = resource;
  } else {
    e.arbiter = resource;
  }
  return {e};
}

std::vector<FaultEvent> seu_storm(const ServiceOptions& o, int copies,
                                  double rate) {
  ServiceFaultPlanOptions po;
  po.seed = 7;
  po.inject_after = o.warmup_cycles;
  po.horizon = o.warmup_cycles + o.measure_cycles;
  po.rate = rate;
  po.kinds = {FaultKind::kFsmBitFlip};
  return fault::plan_service_faults(o.resources, o.ports, copies, po);
}

std::size_t count_diag(const ServiceStats& s, rcsim::DiagKind k) {
  std::size_t n = 0;
  for (const auto& d : s.diagnostics) n += (d.kind == k) ? 1u : 0u;
  return n;
}

// ------------------------------------------------- fault-free replication

TEST(ServiceFaults, FaultFreeReplicationIsByteCompatible) {
  // Synchronized copies produce the plain arbiter's grant stream, so a
  // replicated service with no faults is byte-identical to the plain one —
  // the bench's retention denominators depend on this.
  const ServiceStats plain = run_service(ft_options());
  for (const core::CheckMode mode :
       {core::CheckMode::kDuplicate, core::CheckMode::kTmr}) {
    ServiceOptions o = ft_options();
    o.self_check = mode;
    const ServiceStats s = run_service(o);
    EXPECT_EQ(s.summarize(), plain.summarize()) << core::to_string(mode);
    EXPECT_EQ(s.error_net_trips, 0u);
    EXPECT_EQ(s.resyncs, 0u);
    EXPECT_DOUBLE_EQ(s.availability(), 1.0);
    expect_conserved(s, core::to_string(mode));
  }
}

// --------------------------------------------------------- transient SEUs

TEST(ServiceFaults, SeuStormCorruptsTheUnprotectedService) {
  ServiceOptions o = ft_options();
  o.faults = seu_storm(o, /*copies=*/1, /*rate=*/1e-2);
  const ServiceStats s = run_service(o);
  EXPECT_GT(s.faults_injected, 0u);
  // A flipped one-hot register double-grants (poisoning completions) or
  // leaves the legal state set (killing availability); a plain arbiter
  // shows at least one of the two.
  EXPECT_TRUE(s.multi_grants > 0 || s.availability() < 1.0)
      << s.summarize_faults();
  EXPECT_EQ(s.error_net_trips, 0u) << "no error net to trip";
  expect_conserved(s, "plain + SEU storm");
}

TEST(ServiceFaults, TmrMasksTheSeuStormCompletely) {
  const ServiceStats plain = run_service(ft_options());
  ServiceOptions o = ft_options();
  o.self_check = core::CheckMode::kTmr;
  o.faults = seu_storm(o, /*copies=*/3, /*rate=*/1e-2);
  const ServiceStats s = run_service(o);
  EXPECT_GT(s.faults_injected, 0u);
  EXPECT_GT(s.error_net_trips, 0u);
  EXPECT_GT(s.resyncs, 0u) << "minority copies must be rewritten";
  EXPECT_EQ(s.multi_grants, 0u);
  EXPECT_EQ(s.corrupted, 0u);
  // The vote masks every flip in the same cycle and the resync heals the
  // minority copy, so the *service* behavior is byte-identical to the
  // fault-free run.
  EXPECT_EQ(s.summarize(), plain.summarize());
  EXPECT_DOUBLE_EQ(s.availability(), 1.0);
  expect_conserved(s, "TMR + SEU storm");
}

TEST(ServiceFaults, DmrFailStopsOnSeusWithoutCorruption) {
  ServiceOptions o = ft_options();
  o.self_check = core::CheckMode::kDuplicate;
  o.faults = seu_storm(o, /*copies=*/2, /*rate=*/1e-2);
  const ServiceStats s = run_service(o);
  EXPECT_GT(s.faults_injected, 0u);
  EXPECT_GT(s.error_net_trips, 0u);
  EXPECT_GT(s.resyncs, 0u);
  // Fail-stop: divergent steps are gated, never double-granted.
  EXPECT_EQ(s.multi_grants, 0u);
  EXPECT_EQ(s.corrupted, 0u);
  expect_conserved(s, "DMR + SEU storm");
}

// ------------------------------------------------------ permanent latch-up

TEST(ServiceFaults, DmrLatchupQuarantinesDrainAbortsAndRestores) {
  ServiceOptions o = ft_options();
  o.self_check = core::CheckMode::kDuplicate;
  o.degrade.enabled = true;
  o.faults = one_event(FaultKind::kArbiterLatchup, o.warmup_cycles + 500, 0);
  const ServiceStats s = run_service(o);
  EXPECT_EQ(s.faults_injected, 1u);
  EXPECT_GT(s.error_net_trips, 0u) << "latch-up wedges a corrupt value";
  EXPECT_GE(s.strikes, static_cast<std::uint64_t>(o.degrade.strikes));
  EXPECT_EQ(s.quarantines, 1u);
  // DMR fail-stops the wedged arbiter, so in-flight work cannot finish:
  // the drain deadline force-aborts and the leftovers fail over.
  EXPECT_EQ(s.drain_aborts, 1u);
  EXPECT_GT(s.requeued, 0u);
  EXPECT_EQ(s.restored, 1u) << "reconfiguration rewrites the region";
  EXPECT_EQ(s.retired, 0u);
  ASSERT_EQ(s.quarantine_events.size(), 1u);
  const auto& rec = s.quarantine_events.front();
  EXPECT_EQ(rec.resource, 0);
  EXPECT_TRUE(rec.drain_aborted);
  EXPECT_GT(rec.repair_cycles(), 0u);
  EXPECT_GE(s.mttr_cycles(), 1.0);
  EXPECT_LT(s.availability(), 1.0);
  EXPECT_GE(count_diag(s, rcsim::DiagKind::kQuarantine), 1u);
  expect_conserved(s, "DMR + latch-up");
}

TEST(ServiceFaults, TmrLatchupDrainsCleanlyAndKeepsGoodput) {
  const ServiceStats plain = run_service(ft_options());
  ServiceOptions o = ft_options();
  o.self_check = core::CheckMode::kTmr;
  o.degrade.enabled = true;
  o.faults = one_event(FaultKind::kArbiterLatchup, o.warmup_cycles + 500, 0);
  const ServiceStats s = run_service(o);
  EXPECT_EQ(s.quarantines, 1u);
  EXPECT_EQ(s.restored, 1u);
  // The vote keeps granting through the wedged copy, so the drain
  // completes on its own — no force-abort needed.
  EXPECT_EQ(s.drain_aborts, 0u);
  ASSERT_EQ(s.quarantine_events.size(), 1u);
  EXPECT_FALSE(s.quarantine_events.front().drain_aborted);
  EXPECT_EQ(s.corrupted, 0u);
  // Masking plus a short repair keeps goodput close to fault-free.
  EXPECT_GT(s.goodput(), 0.9 * plain.goodput()) << s.summarize_faults();
  expect_conserved(s, "TMR + latch-up");
}

TEST(ServiceFaults, UnprotectedLatchupIsSilentAndKillsAvailability) {
  ServiceOptions o = ft_options();
  o.degrade.enabled = true;  // supervision without detection is blind
  o.faults = one_event(FaultKind::kArbiterLatchup, o.warmup_cycles + 500, 0);
  const ServiceStats s = run_service(o);
  // Nothing ever detects the frozen plain arbiter: no strikes, no
  // quarantine — the resource just silently stops serving.
  EXPECT_EQ(s.error_net_trips, 0u);
  EXPECT_EQ(s.quarantines, 0u);
  EXPECT_LT(s.availability(), 0.8) << s.summarize_faults();
  // Goodput sags but does not halve at this load: retries re-route
  // randomly, so the live resource absorbs part of the dead one's share.
  EXPECT_LT(s.goodput(), 0.9 * run_service(ft_options()).goodput());
  expect_conserved(s, "plain + latch-up");
}

// ------------------------------------------------ permanent resource death

TEST(ServiceFaults, ResourceFailureRetiresAndFailsOver) {
  ServiceOptions o = ft_options();
  o.degrade.enabled = true;
  o.faults = one_event(FaultKind::kBankFailure, o.warmup_cycles + 500, 1);
  const ServiceStats s = run_service(o);
  EXPECT_GT(s.failed_service, 0u) << "dead datapath fails completions";
  EXPECT_EQ(s.quarantines, 1u);
  EXPECT_EQ(s.retired, 1u) << "a dead resource is retired, not repaired";
  EXPECT_EQ(s.restored, 0u);
  ASSERT_EQ(s.quarantine_events.size(), 1u);
  EXPECT_EQ(s.quarantine_events.front().resource, 1);
  EXPECT_EQ(s.quarantine_events.front().remap_target, 0);
  EXPECT_GE(count_diag(s, rcsim::DiagKind::kRemap), 1u);
  // The survivor keeps serving: goodput degrades, it does not vanish.
  EXPECT_GT(s.goodput(), 0.0);
  EXPECT_LT(s.availability(), 1.0);
  expect_conserved(s, "resource failure");
}

TEST(ServiceFaults, AllResourcesRetiredExhaustsCapacityWithDiagnostics) {
  ServiceOptions o = ft_options();
  o.degrade.enabled = true;
  // The failover storm emits many typed records before the second retire;
  // keep the cap out of the way so the capacity diagnostic is captured.
  o.max_diagnostics = 65'536;
  o.faults = one_event(FaultKind::kBankFailure, o.warmup_cycles + 200, 0);
  const auto second =
      one_event(FaultKind::kBankFailure, o.warmup_cycles + 800, 1);
  o.faults.push_back(second.front());
  const ServiceStats s = run_service(o);
  EXPECT_EQ(s.retired, 2u);
  ASSERT_EQ(s.quarantine_events.size(), 2u);
  EXPECT_EQ(s.quarantine_events.back().remap_target, -1)
      << "no survivor left to take the load";
  // With no live resource every submission is refused with the typed
  // capacity diagnostic and eventually exhausts its retry budget —
  // stall-with-diagnostic, not a hang or a lost request.
  EXPECT_GE(count_diag(s, rcsim::DiagKind::kCapacityExhausted), 1u);
  EXPECT_GT(s.budget_exhausted, 0u);
  expect_conserved(s, "double resource failure");
}

// ------------------------------------- conservation + determinism matrix

TEST(ServiceFaults, ConservationAndDeterminismAcrossTheFaultMatrix) {
  struct Scenario {
    const char* name;
    FaultKind kind;
  };
  const Scenario scenarios[] = {{"seu", FaultKind::kFsmBitFlip},
                                {"latchup", FaultKind::kArbiterLatchup},
                                {"bankfail", FaultKind::kBankFailure}};
  for (const core::CheckMode mode :
       {core::CheckMode::kNone, core::CheckMode::kDuplicate,
        core::CheckMode::kTmr}) {
    for (const auto& sc : scenarios) {
      ServiceOptions o = ft_options();
      o.self_check = mode;
      o.degrade.enabled = true;
      o.arrivals.rate = 0.75;  // 1.5x capacity: the bench's stress point
      if (sc.kind == FaultKind::kFsmBitFlip) {
        const int copies = mode == core::CheckMode::kTmr   ? 3
                           : mode == core::CheckMode::kDuplicate ? 2
                                                                 : 1;
        o.faults = seu_storm(o, copies, 1e-3);
      } else {
        o.faults = one_event(sc.kind, o.warmup_cycles + 500, 0);
      }
      const std::string what =
          std::string(core::to_string(mode)) + " + " + sc.name;
      const ServiceStats a = run_service(o);
      const ServiceStats b = run_service(o);
      expect_conserved(a, what);
      EXPECT_EQ(a.summarize(), b.summarize()) << what;
      EXPECT_EQ(a.summarize_faults(), b.summarize_faults()) << what;
    }
  }
}

// ------------------------------------------------------- plan + validation

TEST(ServiceFaultPlan, DeterministicSortedAndExactlySized) {
  ServiceFaultPlanOptions po;
  po.seed = 11;
  po.inject_after = 1'000;
  po.horizon = 9'000;
  po.rate = 2e-3;
  po.kinds = {FaultKind::kFsmBitFlip, FaultKind::kBankFailure};
  const auto a = fault::plan_service_faults(4, 8, 2, po);
  const auto b = fault::plan_service_faults(4, 8, 2, po);
  ASSERT_EQ(a.size(), 16u);  // round(rate * span)
  ASSERT_EQ(a.size(), b.size());
  std::size_t seus = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].cycle, b[i].cycle);
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].arbiter, b[i].arbiter);
    EXPECT_EQ(a[i].bit, b[i].bit);
    EXPECT_EQ(a[i].bank, b[i].bank);
    if (i > 0) {
      EXPECT_GE(a[i].cycle, a[i - 1].cycle);
    }
    EXPECT_GE(a[i].cycle, po.inject_after);
    EXPECT_LT(a[i].cycle, po.horizon);
    if (a[i].kind == FaultKind::kFsmBitFlip) {
      ++seus;
      EXPECT_GE(a[i].bit, 0);
      EXPECT_LT(a[i].bit, 2 * 2 * 8) << "bit range widens with the copies";
    }
  }
  EXPECT_EQ(seus, 8u) << "mixed kinds are assigned round-robin, exactly";
}

TEST(ServiceFaultPlan, PermanentEventsAreStratifiedRoundRobin) {
  ServiceFaultPlanOptions po;
  po.inject_after = 1'000;
  po.horizon = 5'000;
  po.rate = 3.0 / 4'000.0;  // exactly 3 events over the window
  po.kinds = {FaultKind::kArbiterLatchup};
  const auto plan = fault::plan_service_faults(2, 4, 1, po);
  ASSERT_EQ(plan.size(), 3u);
  // Event j of m lands at inject_after + span * (j+1)/(m+1): no lucky
  // clustering, and the victims rotate so no resource is drawn twice
  // before every resource was drawn once.
  EXPECT_EQ(plan[0].cycle, 2'000u);
  EXPECT_EQ(plan[1].cycle, 3'000u);
  EXPECT_EQ(plan[2].cycle, 4'000u);
  EXPECT_EQ(plan[0].arbiter, 0);
  EXPECT_EQ(plan[1].arbiter, 1);
  EXPECT_EQ(plan[2].arbiter, 0);
}

TEST(ServiceFaultPlan, RejectsNonServiceKindsAndBadShapes) {
  ServiceFaultPlanOptions po;
  po.kinds = {FaultKind::kChannelCorrupt};
  EXPECT_THROW((void)fault::plan_service_faults(2, 4, 1, po), CheckError);
  po.kinds = {FaultKind::kFsmBitFlip};
  EXPECT_THROW((void)fault::plan_service_faults(0, 4, 1, po), CheckError);
  EXPECT_THROW((void)fault::plan_service_faults(2, 4, 4, po), CheckError);
  po.horizon = 10;
  po.inject_after = 10;  // empty window
  EXPECT_THROW((void)fault::plan_service_faults(2, 4, 1, po), CheckError);
}

TEST(ServiceFaults, EngineRejectsMalformedFaultPlans) {
  // Out-of-range target.
  ServiceOptions o = ft_options();
  o.faults = one_event(FaultKind::kArbiterLatchup, 100, 5);
  EXPECT_THROW((void)run_service(o), CheckError);
  // Unsorted plan.
  o = ft_options();
  o.faults = one_event(FaultKind::kFsmBitFlip, 2'000, 0);
  o.faults.push_back(one_event(FaultKind::kFsmBitFlip, 1'000, 1).front());
  EXPECT_THROW((void)run_service(o), CheckError);
  // A kind the service shape cannot interpret.
  o = ft_options();
  o.faults = one_event(FaultKind::kArbiterLatchup, 100, 0);
  o.faults.front().kind = FaultKind::kPermanentStuckChannel;
  EXPECT_THROW((void)run_service(o), CheckError);
  // Non-flat structures have no injectable register surface.
  o = ft_options();
  o.arbiter_kind = core::ArbiterChoice::kPrefix;
  o.faults = one_event(FaultKind::kFsmBitFlip, 2'000, 0);
  EXPECT_THROW((void)run_service(o), CheckError);
}

}  // namespace
}  // namespace rcarb::service
