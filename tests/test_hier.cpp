// Scalable arbiters (core/hier.hpp): tree-shape invariants and exact
// composed waiting bounds, an exhaustive model check over every arbiter
// kind (mutual exclusion + bounded waiting from every reachable state),
// AIG equivalence of the width-unlimited flat chain against the Fig. 5
// structural generator, behavioral-vs-netlist lockstep under matched
// SEUs for all three kinds, pinned per-kind grant sequences, fuzzed wide
// runs (N = 64/256, 10^5 cycles) asserting one-hot grants and no
// starvation, and synthesis sanity of the scalable generator.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/arbiter_factory.hpp"
#include "core/generator.hpp"
#include "core/hier.hpp"
#include "core/policy.hpp"
#include "core/rr_fsm.hpp"
#include "core/structural.hpp"
#include "netlist/simulator.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"
#include "synth/encoding.hpp"
#include "synth/flow.hpp"

namespace rcarb {
namespace {

using core::ArbiterKind;
using core::HierarchicalArbiter;
using core::HierShape;
using core::PrefixArbiter;
using core::RoundRobinArbiter;

// ======================================================== shape and bounds

TEST(HierShape, PerfectQuadTreeComposesToTheFlatBound) {
  const HierShape s = core::make_hier_shape(16, 4);
  EXPECT_EQ(s.nodes.size(), 5u);  // root + four 4-leaf nodes
  EXPECT_EQ(s.ptr_bits_total, 10);
  EXPECT_EQ(s.held_bits, 4);
  EXPECT_EQ(s.num_state_bits(), 15);
  // 16 = 4 * 4: every root->leaf path multiplies to 16, so the composed
  // bound collapses to the flat FSM's N - 1.
  for (int i = 0; i < 16; ++i) EXPECT_EQ(s.waiting_bound(i), 15u);
}

TEST(HierShape, RaggedTreeBoundsExceedNMinusOneOnDeepLeaves) {
  const HierShape s = core::make_hier_shape(6, 4);
  // Root splits 6 as 2+2+1+1: two 2-leaf nodes plus two direct leaves.
  ASSERT_EQ(s.nodes.size(), 3u);
  EXPECT_EQ(s.nodes[0].child.size(), 4u);
  // Leaves under a 2-leaf node wait through both levels: 4 * 2 - 1 = 7;
  // the direct leaves only wait the root rotation: 4 - 1 = 3.
  EXPECT_EQ(s.waiting_bound(0), 7u);
  EXPECT_EQ(s.waiting_bound(1), 7u);
  EXPECT_EQ(s.waiting_bound(2), 7u);
  EXPECT_EQ(s.waiting_bound(3), 7u);
  EXPECT_EQ(s.waiting_bound(4), 3u);
  EXPECT_EQ(s.waiting_bound(5), 3u);
}

TEST(HierShape, SingleInputDegenerates) {
  const HierShape s = core::make_hier_shape(1, 4);
  EXPECT_TRUE(s.nodes.empty());
  EXPECT_EQ(s.num_state_bits(), 1);  // just the holder-valid bit
  EXPECT_EQ(s.waiting_bound(0), 0u);
}

TEST(HierShape, PowerOfTwoBinaryTreesAreFair) {
  for (const int n : {2, 4, 8, 64, 256}) {
    const HierShape s = core::make_hier_shape(n, 2);
    for (int i = 0; i < n; ++i)
      EXPECT_EQ(s.waiting_bound(i), static_cast<std::uint64_t>(n - 1))
          << "n=" << n << " input " << i;
  }
}

// =========================================== uniform model-under-test shim
//
// The exhaustive checks below run the same walk over all four behavioral
// models (the flat Fig. 5 FSM, 2- and 4-way trees, and the prefix
// arbiter), so each gets a thin uniform adapter: step, grant mask, packed
// state register, SEU injection, and the kind's waiting bound.

enum class MKind { kFlat, kHier2, kHier4, kPrefix };

const char* to_string(MKind k) {
  switch (k) {
    case MKind::kFlat: return "flat";
    case MKind::kHier2: return "hier2";
    case MKind::kHier4: return "hier4";
    case MKind::kPrefix: return "prefix";
  }
  return "?";
}

class Model {
 public:
  virtual ~Model() = default;
  virtual int step(std::uint64_t req) = 0;
  [[nodiscard]] virtual std::uint64_t grant_mask() const = 0;
  [[nodiscard]] virtual std::uint64_t state() const = 0;
  [[nodiscard]] virtual int num_state_bits() const = 0;
  virtual void inject(int bit) = 0;
  [[nodiscard]] virtual std::uint64_t bound(int input) const = 0;
};

class FlatModel final : public Model {
 public:
  explicit FlatModel(int n) : arb_(n), n_(n) {}
  int step(std::uint64_t req) override { return arb_.step(req); }
  [[nodiscard]] std::uint64_t grant_mask() const override {
    return arb_.last_grant_mask();
  }
  [[nodiscard]] std::uint64_t state() const override {
    return arb_.state_bits();
  }
  [[nodiscard]] int num_state_bits() const override { return 2 * n_; }
  void inject(int bit) override { arb_.inject_bit_flip(bit); }
  [[nodiscard]] std::uint64_t bound(int) const override {
    return static_cast<std::uint64_t>(n_ - 1);
  }

 private:
  RoundRobinArbiter arb_;
  int n_;
};

class HierModel final : public Model {
 public:
  HierModel(int n, int arity) : arb_(n, arity) {}
  int step(std::uint64_t req) override { return arb_.step(req); }
  [[nodiscard]] std::uint64_t grant_mask() const override {
    return arb_.last_grant_words()[0];
  }
  [[nodiscard]] std::uint64_t state() const override {
    return arb_.state_bits();
  }
  [[nodiscard]] int num_state_bits() const override {
    return arb_.num_state_bits();
  }
  void inject(int bit) override { arb_.inject_state_bit(bit); }
  [[nodiscard]] std::uint64_t bound(int input) const override {
    return arb_.waiting_bound(input);
  }

 private:
  HierarchicalArbiter arb_;
};

class PrefixModel final : public Model {
 public:
  explicit PrefixModel(int n) : arb_(n) {}
  int step(std::uint64_t req) override { return arb_.step(req); }
  [[nodiscard]] std::uint64_t grant_mask() const override {
    return arb_.last_grant_words()[0];
  }
  [[nodiscard]] std::uint64_t state() const override {
    return arb_.state_bits();
  }
  [[nodiscard]] int num_state_bits() const override {
    return arb_.num_state_bits();
  }
  void inject(int bit) override { arb_.inject_state_bit(bit); }
  [[nodiscard]] std::uint64_t bound(int input) const override {
    return arb_.waiting_bound(input);
  }

 private:
  PrefixArbiter arb_;
};

std::unique_ptr<Model> make_model(MKind kind, int n) {
  switch (kind) {
    case MKind::kFlat: return std::make_unique<FlatModel>(n);
    case MKind::kHier2: return std::make_unique<HierModel>(n, 2);
    case MKind::kHier4: return std::make_unique<HierModel>(n, 4);
    case MKind::kPrefix: return std::make_unique<PrefixModel>(n);
  }
  return nullptr;
}

// ===================================================== exhaustive model check

struct MParam {
  MKind kind;
  int n;
};

void PrintTo(const MParam& p, std::ostream* os) {
  *os << to_string(p.kind) << "_n" << p.n;
}

/// One witness request sequence per reachable packed-register state
/// (breadth-first, every request vector tried from every discovered
/// state) — the same exhaustive walk tests/test_degrade.cpp runs over the
/// self-checking variants, generalized over the arbiter kind.
std::vector<std::vector<std::uint64_t>> reachable_witnesses(MKind kind,
                                                            int n) {
  std::map<std::uint64_t, std::vector<std::uint64_t>> seen;
  std::deque<std::vector<std::uint64_t>> work;
  {
    auto m = make_model(kind, n);
    seen.emplace(m->state(), std::vector<std::uint64_t>{});
  }
  work.emplace_back();
  const std::uint64_t reqs = 1ull << n;
  while (!work.empty()) {
    const std::vector<std::uint64_t> w = work.front();
    work.pop_front();
    for (std::uint64_t req = 0; req < reqs; ++req) {
      auto m = make_model(kind, n);
      for (const std::uint64_t r : w) m->step(r);
      m->step(req);
      const std::uint64_t s = m->state();
      if (seen.count(s) != 0) continue;
      std::vector<std::uint64_t> w2 = w;
      w2.push_back(req);
      seen.emplace(s, w2);
      work.push_back(std::move(w2));
    }
  }
  std::vector<std::vector<std::uint64_t>> out;
  out.reserve(seen.size());
  for (const auto& [s, w] : seen) out.push_back(w);
  return out;
}

class ScalableModel : public ::testing::TestWithParam<MParam> {};

TEST_P(ScalableModel, EveryReachableStateKeepsMutualExclusion) {
  const auto [kind, n] = GetParam();
  const auto states = reachable_witnesses(kind, n);
  ASSERT_FALSE(states.empty());
  for (const auto& w : states) {
    for (std::uint64_t req = 0; req < (1ull << n); ++req) {
      auto m = make_model(kind, n);
      for (const std::uint64_t r : w) m->step(r);
      const int g = m->step(req);
      const std::uint64_t mask = m->grant_mask();
      ASSERT_LE(std::popcount(mask), 1) << "mutual exclusion violated";
      ASSERT_EQ(mask & ~req, 0u) << "granted a non-requester";
      ASSERT_EQ(g >= 0 ? (1ull << g) : 0ull, mask);
      if (kind != MKind::kFlat) {
        // The scalable kinds are work-conserving: any request vector gets
        // a grant the same cycle (the flat FSM legitimately idles one
        // cycle on some release transitions).
        ASSERT_EQ(g >= 0, req != 0) << "request vector " << req;
      }
    }
  }
}

TEST_P(ScalableModel, WaitingIsBoundedFromEveryReachableState) {
  const auto [kind, n] = GetParam();
  const std::uint64_t all = (1ull << n) - 1;
  for (const auto& w : reachable_witnesses(kind, n)) {
    auto m = make_model(kind, n);
    for (const std::uint64_t r : w) m->step(r);
    // Continuous contention: every port requests, a grantee deasserts for
    // exactly one cycle after its grant and re-asserts.  Between two
    // consecutive grants of port i, at most bound(i) other grants may be
    // issued — the exact composed bound for the tree, N-1 for the rest.
    std::uint64_t req = all;
    std::vector<std::int64_t> others(static_cast<std::size_t>(n), -1);
    const int cycles = 32 * n + 64;
    for (int cyc = 0; cyc < cycles; ++cyc) {
      const int g = m->step(req);
      if (g >= 0) {
        const std::size_t gi = static_cast<std::size_t>(g);
        if (others[gi] >= 0) {
          ASSERT_LE(static_cast<std::uint64_t>(others[gi]), m->bound(g))
              << "port " << g << " waited past its bound at cycle " << cyc;
        }
        for (int i = 0; i < n; ++i)
          if (i != g && others[static_cast<std::size_t>(i)] >= 0)
            ++others[static_cast<std::size_t>(i)];
        others[gi] = 0;
      }
      req = all;
      if (g >= 0) req &= ~(1ull << g);
    }
    // Every port was served (no starvation) once the walk settled.
    for (int i = 0; i < n; ++i)
      ASSERT_GE(others[static_cast<std::size_t>(i)], 0)
          << "port " << i << " never granted";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Exhaustive, ScalableModel,
    ::testing::Values(MParam{MKind::kFlat, 1}, MParam{MKind::kFlat, 2},
                      MParam{MKind::kFlat, 3}, MParam{MKind::kFlat, 4},
                      MParam{MKind::kFlat, 5}, MParam{MKind::kFlat, 6},
                      MParam{MKind::kHier2, 1}, MParam{MKind::kHier2, 2},
                      MParam{MKind::kHier2, 3}, MParam{MKind::kHier2, 4},
                      MParam{MKind::kHier2, 5}, MParam{MKind::kHier2, 6},
                      MParam{MKind::kHier4, 1}, MParam{MKind::kHier4, 2},
                      MParam{MKind::kHier4, 3}, MParam{MKind::kHier4, 4},
                      MParam{MKind::kHier4, 5}, MParam{MKind::kHier4, 6},
                      MParam{MKind::kPrefix, 1}, MParam{MKind::kPrefix, 2},
                      MParam{MKind::kPrefix, 3}, MParam{MKind::kPrefix, 4},
                      MParam{MKind::kPrefix, 5}, MParam{MKind::kPrefix, 6}),
    [](const auto& pi) {
      return std::string(to_string(pi.param.kind)) + "_n" +
             std::to_string(pi.param.n);
    });

// ============================================ flat wide AIG == Fig. 5 chain

TEST(FlatWideAig, MatchesTheStructuralGeneratorBitForBit) {
  // build_flat_onehot_aig must compute the exact function of the Fig. 5
  // structural chain under one-hot codes — including on illegal
  // (multi-/zero-hot) state-register patterns, which the SEU lockstep
  // depends on.  64 random patterns per round x 64 rounds per size.
  for (int n = 2; n <= 6; ++n) {
    const synth::Fsm fsm = core::build_round_robin_fsm(n);
    const synth::StateCodes codes =
        synth::encode_states(fsm, synth::Encoding::kOneHot);
    ASSERT_EQ(codes.num_bits, 2 * n);
    const aig::Aig ref = core::build_round_robin_aig(n, codes);
    const aig::Aig wide = core::build_flat_onehot_aig(n);
    ASSERT_EQ(ref.num_inputs(), wide.num_inputs());
    ASSERT_EQ(ref.num_outputs(), wide.num_outputs());
    // Outputs match by name (ns<b>..., grant<i>...).
    std::map<std::string, std::size_t> ref_out;
    for (std::size_t o = 0; o < ref.num_outputs(); ++o)
      ref_out.emplace(ref.output_name(o), o);
    Rng rng(4242 + static_cast<std::uint64_t>(n));
    for (int round = 0; round < 64; ++round) {
      std::vector<std::uint64_t> patterns(ref.num_inputs());
      for (auto& p : patterns) p = rng.next_u64();
      const auto rv = ref.simulate(patterns);
      const auto wv = wide.simulate(patterns);
      auto eval = [](const std::vector<std::uint64_t>& values, aig::Lit l) {
        return values[aig::lit_node(l)] ^ (aig::lit_compl(l) ? ~0ull : 0ull);
      };
      for (std::size_t o = 0; o < wide.num_outputs(); ++o) {
        const auto it = ref_out.find(wide.output_name(o));
        ASSERT_NE(it, ref_out.end()) << wide.output_name(o);
        ASSERT_EQ(eval(rv, ref.output_driver(it->second)),
                  eval(wv, wide.output_driver(o)))
            << "output " << wide.output_name(o) << " diverged, n=" << n
            << " round " << round;
      }
    }
  }
}

// ============================================== behavioral/netlist lockstep

struct AigRecipe {
  aig::Aig comb;
  std::vector<bool> reset;
  int num_state_bits;
};

AigRecipe make_recipe(MKind kind, int n) {
  switch (kind) {
    case MKind::kFlat:
      return {core::build_flat_onehot_aig(n),
              core::scalable_reset_bits(ArbiterKind::kFlatFsm, n), 2 * n};
    case MKind::kHier2:
      return {core::build_hierarchical_aig(n, 2),
              core::scalable_reset_bits(ArbiterKind::kHierarchical, n, 2),
              core::make_hier_shape(n, 2).num_state_bits()};
    case MKind::kHier4:
      return {core::build_hierarchical_aig(n, 4),
              core::scalable_reset_bits(ArbiterKind::kHierarchical, n, 4),
              core::make_hier_shape(n, 4).num_state_bits()};
    case MKind::kPrefix:
      return {core::build_prefix_aig(n),
              core::scalable_reset_bits(ArbiterKind::kPrefix, n), n};
  }
  return {aig::Aig{}, {}, 0};
}

class ScalableLockstep : public ::testing::TestWithParam<MParam> {};

TEST_P(ScalableLockstep, NetlistMatchesBehavioralModelUnderUpsets) {
  const auto [kind, n] = GetParam();
  AigRecipe recipe = make_recipe(kind, n);
  ASSERT_EQ(recipe.reset.size(),
            static_cast<std::size_t>(recipe.num_state_bits));
  const synth::SynthResult syn = synth::finish_machine_synthesis(
      recipe.comb, n, recipe.num_state_bits, recipe.reset, {});

  netlist::Simulator sim(syn.netlist);
  auto beh = make_model(kind, n);
  // Resolve port names once — the cycle loop must not hash strings.
  std::vector<netlist::NetId> req_net, grant_net, state_net;
  for (int i = 0; i < n; ++i) {
    req_net.push_back(*syn.netlist.find_net("req" + std::to_string(i)));
    grant_net.push_back(*syn.netlist.find_net("grant" + std::to_string(i)));
  }
  for (int b = 0; b < recipe.num_state_bits; ++b)
    state_net.push_back(*syn.netlist.find_net("state" + std::to_string(b)));

  Rng rng(31000 + static_cast<std::uint64_t>(n) * 8 +
          static_cast<std::uint64_t>(kind));
  for (int cyc = 0; cyc < 900; ++cyc) {
    if (cyc % 37 == 17) {
      // Flip one state-register bit in both twins: the behavioral model
      // and the netlist must agree on every grant from the same illegal
      // state onward (zero-hot pointers, out-of-range held indices, ...).
      const int b = static_cast<int>(rng.next_below(
          static_cast<std::uint64_t>(recipe.num_state_bits)));
      beh->inject(b);
      const netlist::NetId net = state_net[static_cast<std::size_t>(b)];
      sim.poke_register(net, !sim.get(net));
    }
    const std::uint64_t req = rng.next_below(1ull << n);
    for (int i = 0; i < n; ++i)
      sim.set_input(req_net[static_cast<std::size_t>(i)],
                    ((req >> i) & 1) != 0);
    sim.settle();
    beh->step(req);
    const std::uint64_t mask = beh->grant_mask();
    for (int i = 0; i < n; ++i)
      ASSERT_EQ(sim.get(grant_net[static_cast<std::size_t>(i)]),
                ((mask >> i) & 1) != 0)
          << to_string(kind) << " grant" << i << " diverged at cycle " << cyc;
    sim.clock();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ScalableLockstep,
    ::testing::Values(MParam{MKind::kFlat, 2}, MParam{MKind::kFlat, 3},
                      MParam{MKind::kFlat, 4}, MParam{MKind::kFlat, 5},
                      MParam{MKind::kHier2, 2}, MParam{MKind::kHier2, 3},
                      MParam{MKind::kHier2, 4}, MParam{MKind::kHier2, 5},
                      MParam{MKind::kHier4, 3}, MParam{MKind::kHier4, 4},
                      MParam{MKind::kHier4, 5}, MParam{MKind::kPrefix, 2},
                      MParam{MKind::kPrefix, 3}, MParam{MKind::kPrefix, 4},
                      MParam{MKind::kPrefix, 5}),
    [](const auto& pi) {
      return std::string(to_string(pi.param.kind)) + "_n" +
             std::to_string(pi.param.n);
    });

// ================================================== pinned grant sequences

TEST(CrossKind, PinnedGrantSequencesAtN4) {
  // The three structures share the Fig. 8 contract but rotate in
  // legitimately different orders; these sequences pin each kind's exact
  // behavior on one fixed trace (hold, release, rotation, idle, restart).
  const std::vector<std::uint64_t> trace = {
      0b1111, 0b1111, 0b1110, 0b1010, 0b1010, 0b0101,
      0b0100, 0b0011, 0b0000, 0b1111, 0b1000, 0b0110,
  };
  // All kinds: hold 0 while it requests, release on deassert, idle on an
  // empty vector.  They differ exactly where the structures differ: the
  // flat FSM resumes its scan *past* the last holder after the idle
  // (grants 1), the binary tree ping-pongs to the other subtree on
  // release (grants 2 at step 2, 3 after the idle), and the prefix
  // pointer parks at the last grant so it re-grants 0 after the idle.
  const std::map<MKind, std::vector<int>> expected = {
      {MKind::kFlat, {0, 0, 1, 1, 1, 2, 2, 0, -1, 1, 3, 1}},
      {MKind::kHier2, {0, 0, 2, 1, 1, 2, 2, 0, -1, 3, 3, 1}},
      {MKind::kHier4, {0, 0, 1, 1, 1, 2, 2, 0, -1, 1, 3, 1}},
      {MKind::kPrefix, {0, 0, 1, 1, 1, 2, 2, 0, -1, 0, 3, 1}},
  };
  for (const auto& [kind, want] : expected) {
    auto m = make_model(kind, 4);
    std::vector<int> got;
    for (const std::uint64_t req : trace) got.push_back(m->step(req));
    EXPECT_EQ(got, want) << to_string(kind);
  }
}

// ======================================================== fuzzed wide runs

struct WideParam {
  ArbiterKind kind;
  int n;
  int arity;
};

class WideFuzz : public ::testing::TestWithParam<WideParam> {};

TEST_P(WideFuzz, OneHotGrantsAndNoStarvationOver1e5Cycles) {
  const auto [kind, n, arity] = GetParam();
  auto holder = core::make_scalable_arbiter(kind, n, arity);
  // Access the wide surface through the concrete types.
  auto* hier = dynamic_cast<HierarchicalArbiter*>(holder.get());
  auto* prefix = dynamic_cast<PrefixArbiter*>(holder.get());
  auto* flat = dynamic_cast<core::FlatWideArbiter*>(holder.get());
  ASSERT_TRUE(hier != nullptr || prefix != nullptr || flat != nullptr);
  auto step_wide = [&](const std::vector<std::uint64_t>& req) {
    return holder->step_wide(req);
  };
  auto grant_words = [&]() -> const std::vector<std::uint64_t>& {
    if (hier != nullptr) return hier->last_grant_words();
    if (prefix != nullptr) return prefix->last_grant_words();
    return flat->last_grant_words();
  };
  auto bound = [&](int i) {
    if (hier != nullptr) return hier->waiting_bound(i);
    if (prefix != nullptr) return prefix->waiting_bound(i);
    return static_cast<std::uint64_t>(n - 1);  // the flat chain's N - 1
  };

  const std::size_t words = static_cast<std::size_t>((n + 63) / 64);
  const std::uint64_t top_mask =
      (n % 64 == 0) ? ~0ull : ((1ull << (n % 64)) - 1);
  std::vector<std::uint64_t> req(words, 0);
  Rng rng(777 + static_cast<std::uint64_t>(n) * 4 +
          static_cast<std::uint64_t>(arity));

  auto check_grant = [&](int g) {
    int pop = 0;
    for (const std::uint64_t w : grant_words()) pop += std::popcount(w);
    if (g < 0) {
      ASSERT_EQ(pop, 0);
      return;
    }
    ASSERT_LT(g, n);
    ASSERT_EQ(pop, 1) << "grant word vector not one-hot";
    const std::size_t wi = static_cast<std::size_t>(g) / 64;
    const std::uint64_t bit = 1ull << (static_cast<unsigned>(g) % 64u);
    ASSERT_NE(grant_words()[wi] & bit, 0u) << "grant bit/index mismatch";
    ASSERT_NE(req[wi] & bit, 0u) << "granted a non-requester";
  };

  // Fuzz phase: 2000 cycles of random request words to land in an
  // arbitrary (legal) internal state; only grant sanity is asserted.
  for (int cyc = 0; cyc < 2000; ++cyc) {
    for (std::size_t w = 0; w < words; ++w) req[w] = rng.next_u64();
    req[words - 1] &= top_mask;
    check_grant(step_wide(req));
  }

  // Starvation phase: continuous contention (deassert exactly one cycle
  // after the own grant).  Grants are issued every cycle, so the age of a
  // port at its grant is at most its waiting bound plus the one deassert
  // cycle — checked for 10^5 cycles from the fuzzed state.
  for (std::size_t w = 0; w < words; ++w) req[w] = ~0ull;
  req[words - 1] &= top_mask;
  std::vector<int> age(static_cast<std::size_t>(n), -1);
  int last_g = -1;
  for (int cyc = 0; cyc < 100'000; ++cyc) {
    const int g = step_wide(req);
    check_grant(g);
    ASSERT_GE(g, 0) << "no grant under full contention at cycle " << cyc;
    for (int i = 0; i < n; ++i)
      if (age[static_cast<std::size_t>(i)] >= 0)
        ++age[static_cast<std::size_t>(i)];
    const std::size_t gi = static_cast<std::size_t>(g);
    if (age[gi] > 0) {
      ASSERT_LE(static_cast<std::uint64_t>(age[gi]), bound(g) + 2)
          << "port " << g << " starved at cycle " << cyc;
    }
    age[gi] = 0;
    if (last_g >= 0)
      req[static_cast<std::size_t>(last_g) / 64] |=
          1ull << (static_cast<unsigned>(last_g) % 64u);
    req[gi / 64] &= ~(1ull << (static_cast<unsigned>(g) % 64u));
    last_g = g;
  }
  for (int i = 0; i < n; ++i)
    ASSERT_GE(age[static_cast<std::size_t>(i)], 0)
        << "port " << i << " never granted";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WideFuzz,
    ::testing::Values(WideParam{ArbiterKind::kHierarchical, 64, 4},
                      WideParam{ArbiterKind::kHierarchical, 256, 2},
                      WideParam{ArbiterKind::kPrefix, 64, 0},
                      WideParam{ArbiterKind::kPrefix, 256, 0},
                      WideParam{ArbiterKind::kFlatFsm, 128, 0},
                      WideParam{ArbiterKind::kFlatFsm, 256, 0}),
    [](const auto& pi) {
      return std::string(to_string(pi.param.kind)) + "_n" +
             std::to_string(pi.param.n) +
             (pi.param.arity > 0 ? "_a" + std::to_string(pi.param.arity)
                                 : "");
    });

// ========================================== flat wide == Fig. 5 FSM model

TEST(FlatWide, MatchesTheWordWidthFsmAtEveryWidth) {
  // FlatWideArbiter is the chain's behavioral model with the 64-port cap
  // lifted; at word widths it must be grant-for-grant identical to the
  // proven RoundRobinArbiter — through both the word entry (step) and the
  // vector entry (step_wide) the service engine drives.
  for (const int n : {1, 2, 7, 33, 64}) {
    RoundRobinArbiter rr(n);
    core::FlatWideArbiter fw(n);
    const std::uint64_t mask = n == 64 ? ~0ull : (1ull << n) - 1;
    Rng rng(9000 + static_cast<std::uint64_t>(n));
    std::vector<std::uint64_t> word(1, 0);
    for (int cyc = 0; cyc < 50'000; ++cyc) {
      // Force empty vectors in regularly so the Ci -> F(i+1) retirement
      // path is exercised at every width.
      const std::uint64_t req =
          cyc % 7 == 3 ? 0 : (rng.next_u64() & mask);
      const int want = rr.step(req);
      word[0] = req;
      const int got = cyc % 2 == 0 ? fw.step(req) : fw.step_wide(word);
      ASSERT_EQ(got, want) << "n=" << n << " cycle " << cyc;
      ASSERT_EQ(fw.last_grant_words()[0], rr.last_grant_mask())
          << "n=" << n << " cycle " << cyc;
    }
  }
}

// ==================================================== wide observer routing

struct RecordingObserver final : core::ArbiterObserver {
  int word_calls = 0;
  int wide_calls = 0;
  std::vector<std::uint64_t> last_req;
  int last_grant = -2;
  void on_step(std::uint64_t requests, int grant) override {
    ++word_calls;
    last_req = {requests};
    last_grant = grant;
  }
  void on_step_wide(const std::vector<std::uint64_t>& requests,
                    int grant) override {
    ++wide_calls;
    last_req = requests;
    last_grant = grant;
  }
};

TEST(WideObserver, EveryEntryPointNotifiesExactlyOnce) {
  // Wide arbiters notify through on_step_wide from both entry points;
  // word-width arbiters driven through the base step_wide still notify
  // through on_step.  No path may notify twice per cycle.
  core::PrefixArbiter wide(100);
  RecordingObserver obs;
  wide.set_observer(&obs);
  std::vector<std::uint64_t> req = {0, 1ull << 8};  // port 72 only
  EXPECT_EQ(wide.step_wide(req), 72);
  EXPECT_EQ(obs.wide_calls, 1);
  EXPECT_EQ(obs.word_calls, 0);
  EXPECT_EQ(obs.last_req, req);
  EXPECT_EQ(obs.last_grant, 72);
  // The word entry covers ports 0..63 of a wide arbiter and notifies
  // through the word hook (obs::ArbiterProbe forwards it to the wide one).
  EXPECT_EQ(wide.step(1ull << 5), 5);
  EXPECT_EQ(obs.wide_calls, 1);
  EXPECT_EQ(obs.word_calls, 1);
  EXPECT_EQ(obs.last_grant, 5);

  RoundRobinArbiter narrow(8);
  RecordingObserver nobs;
  narrow.set_observer(&nobs);
  EXPECT_EQ(narrow.step_wide({0b100}), 2);
  EXPECT_EQ(nobs.word_calls, 1);
  EXPECT_EQ(nobs.wide_calls, 0);
  EXPECT_EQ(nobs.last_grant, 2);
}

TEST(WideObserver, BaseStepWideRejectsWidthsPast64) {
  // A word-width arbiter must refuse vector requests it cannot see.
  RoundRobinArbiter narrow(64);
  EXPECT_EQ(narrow.step_wide({1ull << 63}), 63);
  class WordOnly final : public core::Arbiter {
   public:
    explicit WordOnly(int n) : Arbiter(WideTag{}, n) {}
    void reset() override {}
    [[nodiscard]] std::string describe() const override { return "word"; }

   protected:
    int do_step(std::uint64_t) override { return -1; }
  };
  WordOnly bad(100);
  EXPECT_THROW((void)bad.step_wide({1, 1}), CheckError);
}

// ================================================ kind selection + factory

TEST(ArbiterFactory, SelectionHonorsTheBudgetInAreaOrder) {
  using core::ArbiterChoice;
  // A floor every structure meets picks the cheapest candidate: the flat
  // chain at word widths, the tree past them (flat is never synthesized
  // there — its fmax decays ~1/N and could only lose).
  EXPECT_EQ(core::select_arbiter_kind(16, 1.0), ArbiterKind::kFlatFsm);
  EXPECT_EQ(core::select_arbiter_kind(128, 1.0), ArbiterKind::kHierarchical);
  // An unmeetable floor falls back to the fastest structure.
  const ArbiterKind fastest = core::select_arbiter_kind(64, 1e9);
  const double hier_fmax =
      core::generate_scalable_cached(ArbiterKind::kHierarchical, 64, 4)
          .chars.fmax_mhz;
  const double prefix_fmax =
      core::generate_scalable_cached(ArbiterKind::kPrefix, 64)
          .chars.fmax_mhz;
  EXPECT_EQ(fastest, hier_fmax >= prefix_fmax ? ArbiterKind::kHierarchical
                                              : ArbiterKind::kPrefix);
  // A budget at the flat chain's own fmax keeps flat; just above loses it.
  const double flat_fmax =
      core::generate_scalable_cached(ArbiterKind::kFlatFsm, 64)
          .chars.fmax_mhz;
  EXPECT_EQ(core::select_arbiter_kind(64, flat_fmax), ArbiterKind::kFlatFsm);
  EXPECT_NE(core::select_arbiter_kind(64, flat_fmax + 1.0),
            ArbiterKind::kFlatFsm);
  EXPECT_THROW((void)core::select_arbiter_kind(16, 0.0), CheckError);
  EXPECT_THROW((void)core::select_arbiter_kind(0, 1.0), CheckError);

  EXPECT_EQ(core::resolve_arbiter_choice(ArbiterChoice::kPrefix, 16, 0.0),
            ArbiterKind::kPrefix);
  EXPECT_EQ(core::resolve_arbiter_choice(ArbiterChoice::kAuto, 16, 1.0),
            ArbiterKind::kFlatFsm);
  EXPECT_THROW(
      (void)core::resolve_arbiter_choice(ArbiterChoice::kAuto, 16, 0.0),
      CheckError);
}

TEST(ArbiterFactory, BuildsTheMatchingSubclassWithTypedViews) {
  using core::SystemArbiterSpec;
  auto flat = core::make_system_arbiter(8, SystemArbiterSpec{});
  ASSERT_NE(flat.rr, nullptr);
  EXPECT_EQ(flat.rr, flat.arbiter.get());
  EXPECT_EQ(flat.kind, ArbiterKind::kFlatFsm);

  SystemArbiterSpec wide_spec;
  wide_spec.kind = ArbiterKind::kFlatFsm;
  auto wide = core::make_system_arbiter(128, wide_spec);
  ASSERT_NE(wide.flat_wide, nullptr);
  EXPECT_EQ(wide.rr, nullptr);

  SystemArbiterSpec hier_spec;
  hier_spec.kind = ArbiterKind::kHierarchical;
  hier_spec.arity = 2;
  auto hier = core::make_system_arbiter(96, hier_spec);
  ASSERT_NE(hier.hier, nullptr);
  EXPECT_EQ(hier.kind, ArbiterKind::kHierarchical);

  SystemArbiterSpec prefix_spec;
  prefix_spec.kind = ArbiterKind::kPrefix;
  auto prefix = core::make_system_arbiter(96, prefix_spec);
  ASSERT_NE(prefix.prefix, nullptr);

  core::SystemArbiterSpec dmr;
  dmr.self_check = core::CheckMode::kDuplicate;
  ASSERT_NE(core::make_system_arbiter(8, dmr).sc, nullptr);
  dmr.kind = ArbiterKind::kPrefix;
  EXPECT_THROW((void)core::make_system_arbiter(8, dmr), CheckError)
      << "self-checking is flat-only";

  // The self-checking service path covers the full word width: one F/C
  // state *word* pair per copy past 32 ports, same factory entry point the
  // fault-tolerant service uses.
  for (const auto& [mode, copies] :
       {std::pair{core::CheckMode::kDuplicate, 2},
        std::pair{core::CheckMode::kTmr, 3}}) {
    for (const int n : {48, 64}) {
      core::SystemArbiterSpec spec;
      spec.self_check = mode;
      auto sys = core::make_system_arbiter(n, spec);
      ASSERT_NE(sys.sc, nullptr) << core::to_string(mode) << " n=" << n;
      EXPECT_EQ(sys.sc, sys.arbiter.get());
      EXPECT_EQ(sys.rr, nullptr) << "typed views are exclusive";
      EXPECT_EQ(sys.sc->num_copies(), copies);
      // Error-net side view: a single corrupted copy trips the comparator
      // on the next step and the resync clears it.
      EXPECT_FALSE(sys.sc->error());
      sys.sc->inject_bit_flip(copies - 1, 3);  // second F-word token bit
      (void)sys.sc->step(0b101ull);
      EXPECT_TRUE(sys.sc->error()) << core::to_string(mode) << " n=" << n;
      EXPECT_GE(sys.sc->error_cycles(), 1u);
      if (mode == core::CheckMode::kDuplicate) {
        EXPECT_EQ(sys.sc->resyncs(), 1u) << "DMR reloads the reset code";
      }
      (void)sys.sc->step(0b101ull);
      EXPECT_FALSE(sys.sc->error()) << "copies reconverge within one step";
    }
  }
  // Past the word width there is no per-copy state-word model: refuse.
  core::SystemArbiterSpec sc65;
  sc65.self_check = core::CheckMode::kTmr;
  EXPECT_THROW((void)core::make_system_arbiter(65, sc65), CheckError);
  // ... and the other scalable structures stay un-replicable too.
  core::SystemArbiterSpec sc_hier;
  sc_hier.self_check = core::CheckMode::kDuplicate;
  sc_hier.kind = ArbiterKind::kHierarchical;
  EXPECT_THROW((void)core::make_system_arbiter(16, sc_hier), CheckError);

  // rr preemption/hardening have no wide-chain model: refuse, don't drop.
  core::SystemArbiterSpec held;
  held.rr.max_hold_cycles = 4;
  ASSERT_NE(core::make_system_arbiter(8, held).rr, nullptr);
  EXPECT_THROW((void)core::make_system_arbiter(128, held), CheckError);

  // Non-round-robin policies ignore the kind machinery entirely.
  core::SystemArbiterSpec fifo;
  fifo.policy = core::Policy::kFifo;
  fifo.kind = ArbiterKind::kPrefix;
  const auto f = core::make_system_arbiter(8, fifo);
  EXPECT_EQ(f.rr, nullptr);
  EXPECT_EQ(f.prefix, nullptr);
  EXPECT_NE(f.arbiter, nullptr);
}

// ======================================================== synthesis sanity

TEST(ScalableSynthesis, RegisterCountsMatchTheStructures) {
  const auto& flat = core::generate_scalable_cached(ArbiterKind::kFlatFsm, 16);
  const auto& hier =
      core::generate_scalable_cached(ArbiterKind::kHierarchical, 16, 4);
  const auto& prefix = core::generate_scalable_cached(ArbiterKind::kPrefix, 16);
  EXPECT_EQ(flat.chars.ffs, 32u);  // 2N one-hot Fi/Ci bits
  EXPECT_EQ(hier.chars.ffs, static_cast<std::size_t>(
                                core::make_hier_shape(16, 4).num_state_bits()));
  EXPECT_EQ(prefix.chars.ffs, 16u);  // N-bit one-hot pointer
  for (const auto* g : {&flat, &hier, &prefix}) {
    EXPECT_GT(g->chars.fmax_mhz, 0.0);
    EXPECT_GT(g->chars.clbs, 0u);
    EXPECT_EQ(g->chars.n, 16);
  }
}

TEST(ScalableSynthesis, HierarchyBeatsTheFlatChainAtN64) {
  const auto& flat = core::generate_scalable_cached(ArbiterKind::kFlatFsm, 64);
  const auto& hier =
      core::generate_scalable_cached(ArbiterKind::kHierarchical, 64, 4);
  const auto& prefix = core::generate_scalable_cached(ArbiterKind::kPrefix, 64);
  // The ISSUE headline: the flat chain's O(N) scan caps its fmax, the
  // tree overtakes it from N = 64 (bench_arbiter_scaling sweeps further).
  EXPECT_GT(hier.chars.fmax_mhz, flat.chars.fmax_mhz);
  EXPECT_GT(prefix.chars.fmax_mhz, flat.chars.fmax_mhz);
  EXPECT_LT(hier.chars.lut_depth, flat.chars.lut_depth);
}

}  // namespace
}  // namespace rcarb
