#include <gtest/gtest.h>

#include "support/check.hpp"
#include "taskgraph/taskgraph.hpp"

namespace rcarb::tg {
namespace {

/// Diamond: a -> {b, c} -> d.
TaskGraph diamond() {
  TaskGraph g("diamond");
  Program p;
  p.compute(1);
  const TaskId a = g.add_task("a", p, 10);
  const TaskId b = g.add_task("b", p, 10);
  const TaskId c = g.add_task("c", p, 10);
  const TaskId d = g.add_task("d", p, 10);
  g.add_control_dep(a, b);
  g.add_control_dep(a, c);
  g.add_control_dep(b, d);
  g.add_control_dep(c, d);
  return g;
}

TEST(TaskGraph, LevelsOfDiamond) {
  const auto levels = diamond().levels();
  EXPECT_EQ(levels, (std::vector<int>{0, 1, 1, 2}));
}

TEST(TaskGraph, PrecedesIsTransitive) {
  const TaskGraph g = diamond();
  EXPECT_TRUE(g.precedes(0, 3));
  EXPECT_TRUE(g.precedes(0, 1));
  EXPECT_FALSE(g.precedes(3, 0));
  EXPECT_FALSE(g.precedes(1, 2));
}

TEST(TaskGraph, SerializedIsSymmetricClosure) {
  const TaskGraph g = diamond();
  EXPECT_TRUE(g.serialized(0, 3));
  EXPECT_TRUE(g.serialized(3, 0));
  EXPECT_FALSE(g.serialized(1, 2)) << "parallel branches may overlap";
}

TEST(TaskGraph, DetectsCycles) {
  TaskGraph g("cycle");
  Program p;
  p.compute(1);
  const TaskId a = g.add_task("a", p);
  const TaskId b = g.add_task("b", p);
  g.add_control_dep(a, b);
  g.add_control_dep(b, a);
  EXPECT_THROW(g.levels(), CheckError);
  EXPECT_THROW(g.validate(), CheckError);
}

TEST(TaskGraph, PredecessorsAndSuccessors) {
  const TaskGraph g = diamond();
  EXPECT_EQ(g.successors(0), (std::vector<TaskId>{1, 2}));
  EXPECT_EQ(g.predecessors(3), (std::vector<TaskId>{1, 2}));
  EXPECT_TRUE(g.predecessors(0).empty());
}

TEST(TaskGraph, ValidateChecksSegmentReferences) {
  TaskGraph g("badseg");
  Program p;
  p.load(0, /*segment=*/5, 0);
  g.add_task("t", p);
  EXPECT_THROW(g.validate(), CheckError);
}

TEST(TaskGraph, ValidateChecksChannelDirection) {
  TaskGraph g("badchan");
  Program sender;
  sender.send(0, 0);
  const TaskId a = g.add_task("a", sender);
  Program idle;
  idle.compute(1);
  const TaskId b = g.add_task("b", idle);
  // Channel declared with b as source, but a sends on it.
  g.add_channel("c", 16, b, a);
  EXPECT_THROW(g.validate(), CheckError);
}

TEST(TaskGraph, ValidChannelUsagePasses) {
  TaskGraph g("okchan");
  Program sender;
  sender.send(0, 0);
  Program receiver;
  receiver.recv(0, 0);
  const TaskId a = g.add_task("a", sender);
  const TaskId b = g.add_task("b", receiver);
  g.add_channel("c", 16, a, b);
  EXPECT_NO_THROW(g.validate());
}

TEST(TaskGraph, TasksAccessingSegment) {
  TaskGraph g("acc");
  g.add_segment("s0", 16, 4);
  g.add_segment("s1", 16, 4);
  Program p0;
  p0.load(0, 0, 0);
  Program p1;
  p1.store(1, 0, 0);
  Program p01;
  p01.load(0, 0, 0).store(1, 0, 0);
  g.add_task("t0", p0);
  g.add_task("t1", p1);
  g.add_task("t01", p01);
  EXPECT_EQ(g.tasks_accessing_segment(0), (std::vector<TaskId>{0, 2}));
  EXPECT_EQ(g.tasks_accessing_segment(1), (std::vector<TaskId>{1, 2}));
}

TEST(TaskGraph, RejectsBadEdges) {
  TaskGraph g("bad");
  Program p;
  p.compute(1);
  const TaskId a = g.add_task("a", p);
  EXPECT_THROW(g.add_control_dep(a, a), CheckError);
  EXPECT_THROW(g.add_control_dep(a, 7), CheckError);
  EXPECT_THROW(g.add_channel("c", 0, a, a), CheckError);
  EXPECT_THROW(g.add_segment("s", 16, 0), CheckError);
}

TEST(TaskGraph, EmptyGraphInvalid) {
  TaskGraph g("empty");
  EXPECT_THROW(g.validate(), CheckError);
}

}  // namespace
}  // namespace rcarb::tg
