#include <gtest/gtest.h>

#include "bdd/bdd.hpp"
#include "logic/truth_table.hpp"
#include "support/rng.hpp"

namespace rcarb::bdd {
namespace {

TEST(Bdd, TerminalsAndVariables) {
  Manager m(3);
  EXPECT_TRUE(m.eval(kTrue, 0));
  EXPECT_FALSE(m.eval(kFalse, 0));
  const Ref x1 = m.var(1);
  EXPECT_TRUE(m.eval(x1, 0b010));
  EXPECT_FALSE(m.eval(x1, 0b101));
}

TEST(Bdd, HashConsingGivesCanonicity) {
  Manager m(4);
  const Ref a = m.var(0);
  const Ref b = m.var(1);
  // (a & b) built twice is the same node; and & is commutative.
  EXPECT_EQ(m.land(a, b), m.land(a, b));
  EXPECT_EQ(m.land(a, b), m.land(b, a));
  // Double negation cancels structurally.
  EXPECT_EQ(m.lnot(m.lnot(a)), a);
  // Tautologies reduce to terminals.
  EXPECT_EQ(m.lor(a, m.lnot(a)), kTrue);
  EXPECT_EQ(m.land(a, m.lnot(a)), kFalse);
}

TEST(Bdd, OperatorSemanticsExhaustive) {
  Manager m(3);
  const Ref a = m.var(0), b = m.var(1), c = m.var(2);
  const Ref f = m.lor(m.land(a, b), m.lxor(b, c));
  for (std::uint64_t p = 0; p < 8; ++p) {
    const bool av = p & 1, bv = (p >> 1) & 1, cv = (p >> 2) & 1;
    EXPECT_EQ(m.eval(f, p), (av && bv) || (bv != cv));
  }
}

TEST(Bdd, IteIsIfThenElse) {
  Manager m(3);
  const Ref s = m.var(0), t = m.var(1), e = m.var(2);
  const Ref f = m.ite(s, t, e);
  for (std::uint64_t p = 0; p < 8; ++p) {
    const bool sv = p & 1, tv = (p >> 1) & 1, ev = (p >> 2) & 1;
    EXPECT_EQ(m.eval(f, p), sv ? tv : ev);
  }
}

TEST(Bdd, RestrictFixesVariable) {
  Manager m(3);
  const Ref f = m.land(m.var(0), m.lor(m.var(1), m.var(2)));
  const Ref f1 = m.restrict_var(f, 0, true);
  for (std::uint64_t p = 0; p < 8; ++p)
    EXPECT_EQ(m.eval(f1, p), m.eval(f, p | 1));
  const Ref f0 = m.restrict_var(f, 0, false);
  EXPECT_EQ(f0, kFalse);
}

TEST(Bdd, SatCount) {
  Manager m(4);
  EXPECT_DOUBLE_EQ(m.sat_count(kTrue), 16.0);
  EXPECT_DOUBLE_EQ(m.sat_count(kFalse), 0.0);
  EXPECT_DOUBLE_EQ(m.sat_count(m.var(2)), 8.0);
  EXPECT_DOUBLE_EQ(m.sat_count(m.land(m.var(0), m.var(3))), 4.0);
  EXPECT_DOUBLE_EQ(m.sat_count(m.lxor(m.var(0), m.var(1))), 8.0);
}

TEST(Bdd, AnySatReturnsSatisfyingAssignment) {
  Manager m(5);
  const Ref f = m.land(m.land(m.var(1), m.lnot(m.var(3))), m.var(4));
  const std::uint64_t a = m.any_sat(f);
  EXPECT_TRUE(m.eval(f, a));
}

TEST(Bdd, SupportFindsTrueSupport) {
  Manager m(5);
  // f = x1 ^ x3; x2 appears nowhere.
  const Ref f = m.lxor(m.var(1), m.var(3));
  EXPECT_EQ(m.support(f), (std::vector<int>{1, 3}));
  EXPECT_TRUE(m.support(kTrue).empty());
}

TEST(Bdd, FromCoverMatchesCoverEval) {
  Rng rng(61);
  for (int trial = 0; trial < 100; ++trial) {
    const int nvars = 2 + static_cast<int>(rng.next_below(8));
    logic::Cover f(nvars);
    for (int i = 0; i < 5; ++i) {
      const std::uint64_t mask = rng.next_below(1ull << nvars);
      f.add(logic::Cube(mask, rng.next_below(1ull << nvars) & mask));
    }
    Manager m(nvars);
    const Ref r = m.from_cover(f);
    for (int check = 0; check < 64; ++check) {
      const std::uint64_t p = rng.next_below(1ull << nvars);
      EXPECT_EQ(m.eval(r, p), f.eval(p));
    }
  }
}

TEST(Bdd, EquivalenceCheckOfIdenticalFunctions) {
  // Two structurally different covers of the same function must produce the
  // same BDD node — this is how the test suite checks synthesized logic.
  Manager m(3);
  logic::Cover f(3);  // a&b | a&~b == a
  f.add(logic::Cube::literal(0, true).with_literal(1, true));
  f.add(logic::Cube::literal(0, true).with_literal(1, false));
  logic::Cover g(3);
  g.add(logic::Cube::literal(0, true));
  EXPECT_EQ(m.from_cover(f), m.from_cover(g));
}

TEST(Bdd, NodeCountStaysReducedOnPriorityChain) {
  // Priority chains (the arbiter's structure) have linear-size BDDs.
  Manager m(16);
  Ref chain = kFalse;
  for (int v = 15; v >= 0; --v) chain = m.ite(m.var(v), kTrue, chain);
  EXPECT_LT(m.node_count(), 64u);
}

}  // namespace
}  // namespace rcarb::bdd
