#include <gtest/gtest.h>

#include "board/board.hpp"
#include "partition/binding.hpp"
#include "partition/channel_map.hpp"
#include "partition/estimate.hpp"
#include "partition/memory_map.hpp"
#include "partition/spatial.hpp"
#include "partition/temporal.hpp"
#include "support/check.hpp"

namespace rcarb::part {
namespace {

using tg::Program;
using tg::TaskGraph;
using tg::TaskId;

Program simple_program() {
  Program p;
  p.load_imm(0, 0).compute(4).halt();
  return p;
}

// ------------------------------------------------------------------ estimate

TEST(Estimate, PricesOperationMix) {
  Program alu_only;
  alu_only.add(1, 2, 3).halt();
  Program with_mul = alu_only;
  with_mul.mul(1, 2, 3);
  const EstimateModel model;
  EXPECT_GT(estimate_task_clbs(with_mul, model),
            estimate_task_clbs(alu_only, model) + model.multiplier - 2);
}

TEST(Estimate, LongerProgramsCostMore) {
  Program shorter;
  shorter.compute(1).halt();
  Program longer = shorter;
  for (int i = 0; i < 20; ++i) longer.add(0, 1, 2);
  EXPECT_GT(estimate_task_clbs(longer), estimate_task_clbs(shorter));
}

TEST(Estimate, AnnotateFillsOnlyMissingAreas) {
  TaskGraph g("a");
  g.add_task("auto", simple_program(), 0);
  g.add_task("manual", simple_program(), 123);
  annotate_areas(g);
  EXPECT_GT(g.task(0).area_clbs, 0u);
  EXPECT_EQ(g.task(1).area_clbs, 123u);
}

// ------------------------------------------------------------------ temporal

TaskGraph chain_tasks(int count, std::size_t area) {
  TaskGraph g("chain");
  for (int i = 0; i < count; ++i)
    g.add_task("t" + std::to_string(i), simple_program(), area);
  for (int i = 0; i + 1 < count; ++i)
    g.add_control_dep(static_cast<TaskId>(i), static_cast<TaskId>(i + 1));
  return g;
}

TEST(Temporal, EverythingFitsInOnePartition) {
  const TaskGraph g = chain_tasks(4, 100);
  const TemporalResult r = temporal_partition(g, board::wildforce(), {});
  EXPECT_EQ(r.partitions.size(), 1u);
  EXPECT_EQ(r.partitions[0].tasks.size(), 4u);
}

TEST(Temporal, SplitsWhenAreaOverflows) {
  // Budget = 0.75 * 2304 = 1728 CLBs; 800-CLB tasks go two per partition.
  const TaskGraph g = chain_tasks(5, 800);
  const TemporalResult r = temporal_partition(g, board::wildforce(), {});
  EXPECT_EQ(r.partitions.size(), 3u);
  EXPECT_EQ(r.partitions[0].tasks.size(), 2u);
  EXPECT_EQ(r.partitions[2].tasks.size(), 1u);
}

TEST(Temporal, RespectsControlDependenceOrder) {
  TaskGraph g("dag");
  const TaskId a = g.add_task("a", simple_program(), 1000);
  const TaskId b = g.add_task("b", simple_program(), 1000);
  const TaskId c = g.add_task("c", simple_program(), 1000);
  g.add_control_dep(a, c);
  g.add_control_dep(b, c);
  const TemporalResult r = temporal_partition(g, board::wildforce(), {});
  EXPECT_LE(r.tp_of_task[a], r.tp_of_task[c]);
  EXPECT_LE(r.tp_of_task[b], r.tp_of_task[c]);
}

TEST(Temporal, ThrowsWhenTaskCannotFit) {
  const TaskGraph g = chain_tasks(1, 50'000);
  EXPECT_THROW(temporal_partition(g, board::wildforce(), {}), CheckError);
}

TEST(Temporal, AccountsArbiterAreaWithPrechar) {
  // Two tasks sharing one segment on a tiny board: with pre-characterized
  // arbiter area the pair no longer fits together.
  TaskGraph g("arb");
  g.add_segment("s", 16, 8);
  Program p;
  p.load_imm(0, 0).store(0, 0, 0).halt();
  g.add_task("a", p, 149);
  g.add_task("b", p, 149);
  board::Board tiny("tiny");
  tiny.add_pe("pe", 400, 0);
  tiny.add_bank("m", 1024, 0);

  TemporalOptions no_arb;  // prechar == nullptr: arbiters priced at zero
  no_arb.utilization = 0.75;
  EXPECT_EQ(temporal_partition(g, tiny, no_arb).partitions.size(), 1u);

  core::PrecharCache prechar;
  TemporalOptions with_arb;
  with_arb.utilization = 0.75;
  with_arb.prechar = &prechar;
  EXPECT_EQ(temporal_partition(g, tiny, with_arb).partitions.size(), 2u);
}

TEST(Temporal, MemoryFootprintLimitsPartition) {
  TaskGraph g("mem");
  g.add_segment("big0", 30 * 1024, 64);
  g.add_segment("big1", 30 * 1024, 64);
  Program p0, p1;
  p0.load_imm(0, 0).store(0, 0, 0).halt();
  p1.load_imm(0, 0).store(1, 0, 0).halt();
  g.add_task("a", p0, 10);
  g.add_task("b", p1, 10);
  board::Board b("small-mem");
  b.add_pe("pe", 2000, 0);
  b.add_bank("m", 32 * 1024, 0);  // only one segment fits at a time
  const TemporalResult r = temporal_partition(g, b, {});
  EXPECT_EQ(r.partitions.size(), 2u);
}

// ------------------------------------------------------------------- spatial

TEST(Spatial, RespectsPerPeCapacity) {
  TaskGraph g("cap");
  std::vector<TaskId> tasks;
  for (int i = 0; i < 8; ++i)
    tasks.push_back(g.add_task("t" + std::to_string(i), simple_program(), 200));
  const SpatialResult r =
      spatial_partition(g, tasks, board::wildforce(), {});
  for (std::size_t p = 0; p < 4; ++p)
    EXPECT_LE(r.pe_clbs[p], static_cast<std::size_t>(0.85 * 576));
  for (TaskId t : tasks) EXPECT_GE(r.pe_of_task[t], 0);
}

TEST(Spatial, ThrowsWhenOverCapacity) {
  TaskGraph g("over");
  std::vector<TaskId> tasks;
  for (int i = 0; i < 3; ++i)
    tasks.push_back(g.add_task("t" + std::to_string(i), simple_program(), 500));
  EXPECT_THROW(spatial_partition(g, tasks, board::mini2(), {}), CheckError);
}

TEST(Spatial, ChannelEndpointsPreferColocation) {
  // Two chatty pairs and plenty of room: refinement should place each
  // pair together, cutting zero channels.
  TaskGraph g("pairs");
  Program sender;
  sender.load_imm(0, 1).send(0, 0).halt();
  Program sender2;
  sender2.load_imm(0, 1).send(1, 0).halt();
  Program recv0;
  recv0.recv(0, 0).halt();
  Program recv1;
  recv1.recv(0, 1).halt();
  const TaskId a = g.add_task("a", sender, 50);
  const TaskId b = g.add_task("b", recv0, 50);
  const TaskId c = g.add_task("c", sender2, 50);
  const TaskId d = g.add_task("d", recv1, 50);
  g.add_channel("ab", 32, a, b);
  g.add_channel("cd", 32, c, d);
  const SpatialResult r =
      spatial_partition(g, {a, b, c, d}, board::mini2(), {});
  EXPECT_EQ(r.pe_of_task[a], r.pe_of_task[b]);
  EXPECT_EQ(r.pe_of_task[c], r.pe_of_task[d]);
  EXPECT_EQ(r.cut_bits, 0u);
}

TEST(Spatial, ReportsCutWidth) {
  TaskGraph g("cut");
  Program sender;
  sender.load_imm(0, 1).send(0, 0).halt();
  Program receiver;
  receiver.recv(0, 0).halt();
  const TaskId a = g.add_task("a", sender, 300);
  const TaskId b = g.add_task("b", receiver, 300);
  g.add_channel("c", 16, a, b);
  const SpatialResult r = spatial_partition(g, {a, b}, board::mini2(), {});
  // 300 + 300 > 0.85*400: the pair cannot share a PE, so the channel is cut.
  EXPECT_NE(r.pe_of_task[a], r.pe_of_task[b]);
  EXPECT_EQ(r.cut_bits, 16u) << "pe_a=" << r.pe_of_task[a]
                             << " pe_b=" << r.pe_of_task[b]
                             << " passes=" << r.passes_run;
}

// --------------------------------------------------------------- memory map

TEST(MemoryMap, SpreadsSegmentsWhenBanksSuffice) {
  TaskGraph g("spread");
  g.add_segment("s0", 1024, 16);
  g.add_segment("s1", 1024, 16);
  Program p0, p1;
  p0.load_imm(0, 0).store(0, 0, 0).halt();
  p1.load_imm(0, 0).store(1, 0, 0).halt();
  const TaskId a = g.add_task("a", p0, 10);
  const TaskId b = g.add_task("b", p1, 10);
  const std::vector<int> pes{0, 1};
  const MemoryMapResult r =
      map_memory(g, {a, b}, board::wildforce(), pes);
  EXPECT_GE(r.bank_of_segment[0], 0);
  EXPECT_GE(r.bank_of_segment[1], 0);
  EXPECT_NE(r.bank_of_segment[0], r.bank_of_segment[1]);
  EXPECT_EQ(r.shared_banks, 0u);
}

TEST(MemoryMap, PrefersLocalBank) {
  TaskGraph g("local");
  g.add_segment("s", 1024, 16);
  Program p;
  p.load_imm(0, 0).store(0, 0, 0).halt();
  const TaskId a = g.add_task("a", p, 10);
  for (int pe = 0; pe < 4; ++pe) {
    const std::vector<int> pes{pe};
    const MemoryMapResult r = map_memory(g, {a}, board::wildforce(), pes);
    EXPECT_EQ(r.bank_of_segment[0], pe) << "bank attached to the task's PE";
  }
}

TEST(MemoryMap, MergesWhenSegmentsExceedBanks) {
  TaskGraph g("merge");
  Program p;
  p.load_imm(0, 0);
  for (int s = 0; s < 6; ++s) {
    g.add_segment("s" + std::to_string(s), 1024, 16);
    p.store(s, 0, 0);
  }
  p.halt();
  const TaskId t = g.add_task("t", p, 10);
  const std::vector<int> pes{0};
  const MemoryMapResult r = map_memory(g, {t}, board::wildforce(), pes);
  for (int s = 0; s < 6; ++s) EXPECT_GE(r.bank_of_segment[s], 0);
  EXPECT_GE(r.shared_banks, 1u) << "6 segments on 4 banks must share";
}

TEST(MemoryMap, InactiveSegmentsStayUnmapped) {
  TaskGraph g("inactive");
  g.add_segment("used", 1024, 16);
  g.add_segment("unused", 1024, 16);
  Program p;
  p.load_imm(0, 0).store(0, 0, 0).halt();
  const TaskId t = g.add_task("t", p, 10);
  const std::vector<int> pes{0};
  const MemoryMapResult r = map_memory(g, {t}, board::wildforce(), pes);
  EXPECT_GE(r.bank_of_segment[0], 0);
  EXPECT_EQ(r.bank_of_segment[1], -1);
}

TEST(MemoryMap, ThrowsWhenSegmentTooLarge) {
  TaskGraph g("huge");
  g.add_segment("s", 1024 * 1024, 16);
  Program p;
  p.load_imm(0, 0).store(0, 0, 0).halt();
  const TaskId t = g.add_task("t", p, 10);
  const std::vector<int> pes{0};
  EXPECT_THROW(map_memory(g, {t}, board::wildforce(), pes), CheckError);
}

TEST(MemoryMap, ContentionAwarePackingAvoidsHotBanks) {
  // 8 segments, each its own accessor task, on 4 banks: the conflict-aware
  // packer should end with at most 2-3 tasks per bank instead of piling up.
  TaskGraph g("fair");
  Program base;
  std::vector<TaskId> tasks;
  for (int s = 0; s < 8; ++s) {
    g.add_segment("s" + std::to_string(s), 1024, 16);
    Program p;
    p.load_imm(0, 0).store(s, 0, 0).halt();
    tasks.push_back(g.add_task("t" + std::to_string(s), p, 10));
  }
  std::vector<int> pes(8);
  for (int i = 0; i < 8; ++i) pes[static_cast<std::size_t>(i)] = i % 4;
  const MemoryMapResult r = map_memory(g, tasks, board::wildforce(), pes);
  std::vector<int> per_bank(4, 0);
  for (int s = 0; s < 8; ++s)
    ++per_bank[static_cast<std::size_t>(r.bank_of_segment[s])];
  for (int b = 0; b < 4; ++b)
    EXPECT_LE(per_bank[static_cast<std::size_t>(b)], 3);
}

// --------------------------------------------------------------- channel map

struct ChannelFixture {
  TaskGraph g{"chan"};
  std::vector<TaskId> tasks;
  std::vector<int> pes;

  /// Creates `n` sender/receiver pairs across mini2's two PEs, each with a
  /// `width`-bit channel.
  explicit ChannelFixture(int n, int width) {
    for (int i = 0; i < n; ++i) {
      Program snd;
      snd.load_imm(0, i).send(i, 0).halt();
      Program rcv;
      rcv.recv(0, i).halt();
      const TaskId s = g.add_task("s" + std::to_string(i), snd, 10);
      const TaskId r = g.add_task("r" + std::to_string(i), rcv, 10);
      g.add_channel("c" + std::to_string(i), width, s, r);
      tasks.push_back(s);
      tasks.push_back(r);
      pes.push_back(0);
      pes.push_back(1);
    }
  }
};

TEST(ChannelMap, DedicatedWiresWhileTheyLast) {
  ChannelFixture fx(2, 8);  // 16 bits total over a 16-bit link
  const ChannelMapResult r =
      map_channels(fx.g, fx.tasks, board::mini2(), fx.pes);
  EXPECT_EQ(r.phys.size(), 2u);
  EXPECT_EQ(r.merged_channels, 0u);
  EXPECT_EQ(r.link_pins_used[0], 16);
}

TEST(ChannelMap, MergesWhenPinsRunOut) {
  ChannelFixture fx(3, 8);  // 24 bits demanded, 16-bit link, no crossbar
  const ChannelMapResult r =
      map_channels(fx.g, fx.tasks, board::mini2(), fx.pes);
  EXPECT_EQ(r.merged_channels, 1u);
  // One physical channel now carries two logical channels.
  bool found_shared = false;
  for (const PhysChannel& ph : r.phys)
    if (ph.logical.size() == 2) found_shared = true;
  EXPECT_TRUE(found_shared);
}

TEST(ChannelMap, SharedChannelNameListsMembers) {
  ChannelFixture fx(3, 8);
  const ChannelMapResult r =
      map_channels(fx.g, fx.tasks, board::mini2(), fx.pes);
  bool found = false;
  for (const PhysChannel& ph : r.phys)
    if (ph.logical.size() > 1) {
      EXPECT_NE(ph.name.find("shared"), std::string::npos);
      found = true;
    }
  EXPECT_TRUE(found);
}

TEST(ChannelMap, ColocatedChannelsNeedNoWires) {
  ChannelFixture fx(1, 8);
  fx.pes = {0, 0};  // same PE
  const ChannelMapResult r =
      map_channels(fx.g, fx.tasks, board::mini2(), fx.pes);
  EXPECT_EQ(r.phys_of_channel[0], -1);
  EXPECT_TRUE(r.phys.empty());
}

TEST(ChannelMap, CrossbarUsedWhenLinksExhausted) {
  // Wildforce: PE0-PE1 link is 36 bits; a 30-bit and a 20-bit channel need
  // the crossbar for the second one.
  TaskGraph g("xbar");
  Program snd1, snd2, rcv1, rcv2;
  snd1.load_imm(0, 1).send(0, 0).halt();
  snd2.load_imm(0, 2).send(1, 0).halt();
  rcv1.recv(0, 0).halt();
  rcv2.recv(0, 1).halt();
  const TaskId a = g.add_task("a", snd1, 10);
  const TaskId b = g.add_task("b", rcv1, 10);
  const TaskId c = g.add_task("c", snd2, 10);
  const TaskId d = g.add_task("d", rcv2, 10);
  g.add_channel("wide", 30, a, b);
  g.add_channel("also", 20, c, d);
  const std::vector<int> pes{0, 1, 0, 1};
  const ChannelMapResult r =
      map_channels(g, {a, b, c, d}, board::wildforce(), pes);
  EXPECT_EQ(r.merged_channels, 0u);
  bool via_xbar = false;
  for (const PhysChannel& ph : r.phys) via_xbar = via_xbar || ph.via_crossbar;
  EXPECT_TRUE(via_xbar);
  EXPECT_EQ(r.crossbar_pins_used[0], 20);
}

TEST(ChannelMap, ThrowsWhenNoRouteWideEnough) {
  ChannelFixture fx(1, 64);  // wider than mini2's 16-bit link
  EXPECT_THROW(map_channels(fx.g, fx.tasks, board::mini2(), fx.pes),
               CheckError);
}

// ---------------------------------------------- degradation remap planning

TEST(MemoryMap, FailedBanksAreNeverAssigned) {
  TaskGraph g("shrunk");
  g.add_segment("s0", 1024, 16);
  Program p;
  p.load_imm(0, 0).store(0, 0, 0).halt();
  const TaskId a = g.add_task("a", p, 10);
  const std::vector<int> pes{0};
  const board::Board board = board::wildforce();

  MemoryMapOptions opt;
  for (board::BankId b = 0; b + 1 < board.num_banks(); ++b)
    opt.failed_banks.push_back(b);  // only the last bank survives
  const MemoryMapResult r = map_memory(g, {a}, board, pes, opt);
  EXPECT_EQ(r.bank_of_segment[0], static_cast<int>(board.num_banks() - 1));

  MemoryMapOptions none;
  for (board::BankId b = 0; b < board.num_banks(); ++b)
    none.failed_banks.push_back(b);
  EXPECT_THROW(map_memory(g, {a}, board, pes, none), CheckError);
}

TEST(ChannelRemap, GroupMovesOntoAWideEnoughSurvivor) {
  ChannelFixture fx(2, 8);  // two dedicated 8-bit phys channels on mini2
  ChannelMapResult r = map_channels(fx.g, fx.tasks, board::mini2(), fx.pes);
  ASSERT_EQ(r.phys.size(), 2u);

  const ChannelRemap plan =
      remap_channels(fx.g, r, /*dead_phys=*/0, {false, false});
  EXPECT_TRUE(plan.feasible);
  EXPECT_EQ(plan.target_phys, 1);
  ASSERT_EQ(plan.moved.size(), 1u);
  // The tables were rewritten in place: the dead channel's logical load
  // now rides the survivor.
  EXPECT_EQ(r.phys_of_channel[plan.moved[0]], 1);
  EXPECT_EQ(r.phys[1].logical.size(), 2u);
  EXPECT_TRUE(r.phys[0].logical.empty());
}

TEST(ChannelRemap, TooNarrowSurvivorIsInfeasibleAndLeavesTablesAlone) {
  // 12-bit and 4-bit channels share mini2's 16-bit link as two dedicated
  // phys channels.  The 4-bit survivor cannot carry the 12-bit channel.
  TaskGraph g("narrow");
  Program snd1, snd2, rcv1, rcv2;
  snd1.load_imm(0, 1).send(0, 0).halt();
  snd2.load_imm(0, 2).send(1, 0).halt();
  rcv1.recv(0, 0).halt();
  rcv2.recv(0, 1).halt();
  const TaskId a = g.add_task("a", snd1, 10);
  const TaskId b = g.add_task("b", rcv1, 10);
  const TaskId c = g.add_task("c", snd2, 10);
  const TaskId d = g.add_task("d", rcv2, 10);
  g.add_channel("wide", 12, a, b);
  g.add_channel("thin", 4, c, d);
  const std::vector<int> pes{0, 1, 0, 1};
  ChannelMapResult r = map_channels(g, {a, b, c, d}, board::mini2(), pes);
  ASSERT_EQ(r.phys.size(), 2u);
  const ChannelMapResult before = r;

  const int wide_phys = r.phys_of_channel[0];
  const int thin_phys = r.phys_of_channel[1];
  // Thin dies: the wide survivor has room.
  EXPECT_TRUE(remap_channels(g, r, thin_phys, {false, false}).feasible);
  r = before;
  // Wide dies: the thin survivor is too narrow; tables stay untouched.
  const ChannelRemap no = remap_channels(g, r, wide_phys, {false, false});
  EXPECT_FALSE(no.feasible);
  EXPECT_EQ(r.phys_of_channel, before.phys_of_channel);

  // A survivor already quarantined by an earlier failure is also barred.
  std::vector<bool> failed(2, false);
  failed[static_cast<std::size_t>(wide_phys)] = true;
  EXPECT_FALSE(remap_channels(g, r, thin_phys, failed).feasible);
}

// ------------------------------------------------------------------- binding

TEST(Binding, AssemblesFromPartitionResults) {
  ChannelFixture fx(3, 8);
  const board::Board board = board::mini2();
  SpatialResult spatial;
  spatial.pe_of_task = fx.pes;
  spatial.pe_clbs = {30, 30};
  const MemoryMapResult memory{
      std::vector<int>(fx.g.num_segments(), -1), {16384, 16384}, 0};
  const ChannelMapResult channels =
      map_channels(fx.g, fx.tasks, board, fx.pes);
  const core::Binding binding =
      make_binding(fx.g, board, spatial, memory, channels);
  EXPECT_EQ(binding.num_banks, 2u);
  EXPECT_EQ(binding.num_phys_channels, channels.phys.size());
  EXPECT_EQ(binding.bank_names[0], "MEM1");
  EXPECT_EQ(binding.channel_to_phys, channels.phys_of_channel);
}

}  // namespace
}  // namespace rcarb::part
