#include <gtest/gtest.h>

#include "core/insertion.hpp"
#include "rcsim/system_sim.hpp"
#include "support/check.hpp"

namespace rcarb::rcsim {
namespace {

using core::Binding;
using core::InsertionOptions;
using core::InsertionResult;
using tg::Program;
using tg::TaskGraph;
using tg::TaskId;

Binding single_bank_binding(const TaskGraph& g, std::size_t num_tasks) {
  Binding b;
  b.task_to_pe.assign(num_tasks, 0);
  b.segment_to_bank.assign(g.num_segments(), 0);
  b.channel_to_phys.assign(g.num_channels(), -1);
  b.num_banks = 1;
  b.bank_names = {"BANK"};
  return b;
}

core::ArbitrationPlan empty_plan(const Binding& b) {
  core::ArbitrationPlan plan;
  plan.arbiters_of_resource.assign(b.num_resources(), {});
  return plan;
}

// ----------------------------------------------------------- op semantics

TEST(Rcsim, AluAndMemorySemantics) {
  TaskGraph g("alu");
  g.add_segment("s", 64, 16);
  Program p;
  p.load_imm(1, 6)
      .load_imm(2, 7)
      .mul(3, 1, 2)        // 42
      .add(4, 3, 1)        // 48
      .sub(5, 4, 2)        // 41
      .shl(6, 5, 1)        // 82
      .shr(7, 6, 2)        // 20
      .add_imm(8, 7, 100)  // 120
      .mul_q(9, 1, 2, 1)   // (6*7)>>1 = 21
      .mov(10, 9)
      .load_imm(0, 0)
      .store(0, 0, 8, 3)   // s[3] = 120
      .store(0, 0, 10, 4)  // s[4] = 21
      .load(11, 0, 0, 3)
      .store(0, 0, 11, 5)  // s[5] = 120
      .halt();
  g.add_task("t", p, 1);
  const Binding b = single_bank_binding(g, 1);
  SystemSimulator sim(g, b, empty_plan(b));
  const SimResult r = sim.run({0});
  EXPECT_EQ(sim.segment_data(0)[3], 120);
  EXPECT_EQ(sim.segment_data(0)[4], 21);
  EXPECT_EQ(sim.segment_data(0)[5], 120);
  EXPECT_TRUE(r.diagnostics.empty());
}

TEST(Rcsim, EveryCostedOpTakesOneCycle) {
  TaskGraph g("cost");
  Program p;
  p.load_imm(0, 1).add(1, 0, 0).add(2, 1, 1).halt();
  g.add_task("t", p, 1);
  Binding b = single_bank_binding(g, 1);
  b.num_banks = 0;
  b.bank_names.clear();
  SystemSimulator sim(g, b, empty_plan(b));
  const SimResult r = sim.run({0});
  EXPECT_EQ(r.cycles, 3u);  // 3 costed ops; halt is free
}

TEST(Rcsim, ComputeTakesDeclaredCycles) {
  TaskGraph g("busy");
  Program p;
  p.compute(10).halt();
  g.add_task("t", p, 1);
  Binding b = single_bank_binding(g, 1);
  b.num_banks = 0;
  b.bank_names.clear();
  SystemSimulator sim(g, b, empty_plan(b));
  EXPECT_EQ(sim.run({0}).cycles, 10u);
}

TEST(Rcsim, LoopsIterateAndNest) {
  TaskGraph g("loop");
  g.add_segment("s", 64, 16);
  Program p;
  p.load_imm(0, 0)  // address/counter
      .load_imm(1, 0)
      .loop_begin(3)
      .loop_begin(4)
      .add_imm(1, 1, 1)
      .loop_end()
      .loop_end()
      .store(0, 0, 1)
      .halt();
  g.add_task("t", p, 1);
  const Binding b = single_bank_binding(g, 1);
  SystemSimulator sim(g, b, empty_plan(b));
  sim.run({0});
  EXPECT_EQ(sim.segment_data(0)[0], 12);  // 3 * 4 iterations
}

TEST(Rcsim, ZeroCountLoopSkipsBody) {
  TaskGraph g("skip");
  g.add_segment("s", 64, 16);
  Program p;
  p.load_imm(0, 0).load_imm(1, 7).loop_begin(0).load_imm(1, 99).loop_end();
  p.store(0, 0, 1).halt();
  g.add_task("t", p, 1);
  const Binding b = single_bank_binding(g, 1);
  SystemSimulator sim(g, b, empty_plan(b));
  sim.run({0});
  EXPECT_EQ(sim.segment_data(0)[0], 7);
}

TEST(Rcsim, ControlDependenciesSequenceTasks) {
  TaskGraph g("deps");
  g.add_segment("s", 64, 16);
  Program writer;
  writer.load_imm(0, 0).load_imm(1, 5).store(0, 0, 1).halt();
  Program reader;
  reader.load_imm(0, 0).load(1, 0, 0).add_imm(1, 1, 1).store(0, 0, 1, 1).halt();
  const TaskId w = g.add_task("w", writer, 1);
  const TaskId r = g.add_task("r", reader, 1);
  g.add_control_dep(w, r);
  const Binding b = single_bank_binding(g, 2);
  SystemSimulator sim(g, b, empty_plan(b));
  const SimResult result = sim.run({w, r});
  EXPECT_EQ(sim.segment_data(0)[1], 6) << "reader must see the writer's value";
  EXPECT_GE(result.tasks[r].start_cycle, result.tasks[w].finish_cycle);
}

// ------------------------------------------------- conflicts & protocol

/// Two tasks hammering segments bound to one bank.
struct ContentionFixture {
  TaskGraph g{"contend"};
  Binding binding;

  explicit ContentionFixture(int accesses) {
    g.add_segment("s0", 64, 16);
    g.add_segment("s1", 64, 16);
    for (int t = 0; t < 2; ++t) {
      Program p;
      p.load_imm(0, 0);
      for (int i = 0; i < accesses; ++i) p.store(t, 0, 0, i);
      p.halt();
      g.add_task("t" + std::to_string(t), p, 1);
    }
    binding = single_bank_binding(g, 2);
  }
};

TEST(Rcsim, UnarbitratedContentionDetected) {
  ContentionFixture fx(4);
  SimOptions options;
  options.strict = false;
  SystemSimulator sim(fx.g, fx.binding, empty_plan(fx.binding), options);
  const SimResult r = sim.run({0, 1});
  EXPECT_GT(r.bank_conflicts, 0u)
      << "two parallel tasks on one bank must collide without arbitration";
}

TEST(Rcsim, StrictModeThrowsOnConflict) {
  ContentionFixture fx(4);
  SystemSimulator sim(fx.g, fx.binding, empty_plan(fx.binding), {});
  EXPECT_THROW(sim.run({0, 1}), CheckError);
}

TEST(Rcsim, ArbitrationEliminatesConflicts) {
  ContentionFixture fx(4);
  const InsertionResult ins =
      core::insert_arbitration(fx.g, fx.binding, {});
  SystemSimulator sim(ins.graph, fx.binding, ins.plan);
  const SimResult r = sim.run({0, 1});
  EXPECT_EQ(r.bank_conflicts, 0u);
  EXPECT_EQ(r.protocol_violations, 0u);
  EXPECT_EQ(sim.segment_data(0)[0], 0);
  ASSERT_EQ(r.arbiters.size(), 1u);
  EXPECT_GT(r.arbiters[0].grants, 0u);
}

TEST(Rcsim, Fig8OverheadIsTwoCyclesPerBurst) {
  // Solo task, artificially arbitrated: each burst costs exactly +2.
  TaskGraph g("overhead");
  g.add_segment("s", 64, 16);
  Program p;
  p.load_imm(0, 0);
  for (int i = 0; i < 4; ++i) p.store(0, 0, 0, i);
  p.halt();
  g.add_task("t", p, 1);
  g.add_task("other", p, 1);  // second accessor forces the arbiter
  Binding b = single_bank_binding(g, 2);

  InsertionOptions im2;
  im2.batch_m = 2;
  const InsertionResult ins = core::insert_arbitration(g, b, im2);
  SystemSimulator sim(ins.graph, b, ins.plan);
  // Run ONLY task 0: no contention, grants are immediate.
  const SimResult r = sim.run({0});
  // Unarbitrated baseline: 1 (load_imm) + 4 stores = 5 cycles.
  // M=2 -> 2 bursts -> +4 cycles.
  EXPECT_EQ(r.cycles, 9u);
  EXPECT_EQ(r.tasks[0].acquires, 2u);
}

TEST(Rcsim, AccessWithoutRequestIsProtocolViolation) {
  ContentionFixture fx(2);
  // Plan an arbiter but do NOT rewrite the programs.
  const InsertionResult ins =
      core::insert_arbitration(fx.g, fx.binding, {});
  SimOptions options;
  options.strict = false;
  SystemSimulator sim(fx.g, fx.binding, ins.plan, options);
  const SimResult r = sim.run({0, 1});
  EXPECT_GT(r.protocol_violations, 0u);
}

TEST(Rcsim, GrantWaitCyclesAccounted) {
  ContentionFixture fx(6);
  const InsertionResult ins =
      core::insert_arbitration(fx.g, fx.binding, {});
  SystemSimulator sim(ins.graph, fx.binding, ins.plan);
  const SimResult r = sim.run({0, 1});
  EXPECT_GT(r.tasks[0].grant_wait_cycles + r.tasks[1].grant_wait_cycles, 0u)
      << "two contenders cannot both always get instant grants";
  ASSERT_EQ(r.arbiters.size(), 1u);
  EXPECT_GT(r.arbiters[0].granted_cycles, 0u);
}

TEST(Rcsim, PreemptionBoundsHolding) {
  // Task 0 holds with a huge M; with rr_max_hold the second task still
  // finishes long before task 0 releases voluntarily.
  TaskGraph g("hog");
  g.add_segment("s0", 64, 16);
  g.add_segment("s1", 64, 16);
  Program hog;
  hog.load_imm(0, 0);
  for (int i = 0; i < 12; ++i) hog.store(0, 0, 0, i % 8);
  hog.halt();
  Program meek;
  meek.load_imm(0, 0).store(1, 0, 0).halt();
  g.add_task("hog", hog, 1);
  g.add_task("meek", meek, 1);
  Binding b = single_bank_binding(g, 2);

  InsertionOptions huge_m;
  huge_m.batch_m = 1000;
  const InsertionResult ins = core::insert_arbitration(g, b, huge_m);

  SimOptions no_preempt;
  SystemSimulator sim1(ins.graph, b, ins.plan, no_preempt);
  const SimResult r1 = sim1.run({0, 1});

  SimOptions preempt;
  preempt.rr_max_hold = 3;
  SystemSimulator sim2(ins.graph, b, ins.plan, preempt);
  const SimResult r2 = sim2.run({0, 1});

  EXPECT_LT(r2.tasks[1].finish_cycle, r1.tasks[1].finish_cycle)
      << "preemption must shorten the meek task's wait";
  EXPECT_EQ(r2.bank_conflicts, 0u);
  EXPECT_EQ(r2.protocol_violations, 0u);
}

// ------------------------------------------------------------- channels

TEST(Rcsim, ChannelTransfersValue) {
  TaskGraph g("chan");
  Program snd;
  snd.load_imm(0, 123).send(0, 0).halt();
  Program rcv;
  rcv.recv(1, 0).halt();
  const TaskId s = g.add_task("s", snd, 1);
  const TaskId r = g.add_task("r", rcv, 1);
  g.add_channel("c", 32, s, r);
  g.add_segment("out", 64, 16);
  // Extend receiver to store what it got.
  Program rcv2;
  rcv2.recv(1, 0).load_imm(0, 0).store(0, 0, 1).halt();
  g.task(r).program = rcv2;

  Binding b = single_bank_binding(g, 2);
  SystemSimulator sim(g, b, empty_plan(b));
  sim.run({s, r});
  EXPECT_EQ(sim.segment_data(0)[0], 123);
}

TEST(Rcsim, RecvBlocksUntilSend) {
  TaskGraph g("block");
  Program snd;
  snd.compute(20).load_imm(0, 9).send(0, 0).halt();
  Program rcv;
  rcv.recv(1, 0).halt();
  const TaskId s = g.add_task("s", snd, 1);
  const TaskId r = g.add_task("r", rcv, 1);
  g.add_channel("c", 32, s, r);
  Binding b = single_bank_binding(g, 2);
  b.num_banks = 0;
  b.bank_names.clear();
  SystemSimulator sim(g, b, empty_plan(b));
  const SimResult result = sim.run({s, r});
  EXPECT_GE(result.tasks[r].finish_cycle, 21u);
}

TEST(Rcsim, ReceiverRegistersSurviveLaterTransfers) {
  // The paper's Table 1 argument: c1's value must remain for task 2 even
  // after task 4 writes the shared physical channel.
  TaskGraph g("table1");
  Program t1;
  t1.load_imm(0, 10).send(0, 0).halt();  // c1 := 10
  Program t4;
  t4.load_imm(0, 102).send(1, 0).halt();  // c4 := 102
  Program t2;
  t2.compute(30).recv(1, 0).halt();  // consumes c1 late
  Program t3;
  t3.recv(1, 1).halt();
  const TaskId task1 = g.add_task("T1", t1, 1);
  const TaskId task2 = g.add_task("T2", t2, 1);
  const TaskId task3 = g.add_task("T3", t3, 1);
  const TaskId task4 = g.add_task("T4", t4, 1);
  g.add_channel("c1", 16, task1, task2);
  g.add_channel("c4", 16, task4, task3);
  g.add_segment("out", 64, 16);
  Program t2_store;
  t2_store.compute(30).recv(1, 0).load_imm(0, 0).store(0, 0, 1).halt();
  g.task(task2).program = t2_store;

  Binding b = single_bank_binding(g, 4);
  b.channel_to_phys = {0, 0};  // merged onto one physical channel "c1_4"
  b.num_phys_channels = 1;
  b.phys_channel_names = {"c1_4"};

  const InsertionResult ins = core::insert_arbitration(g, b, {});
  SystemSimulator sim(ins.graph, b, ins.plan);
  const SimResult r = sim.run({task1, task2, task3, task4});
  EXPECT_EQ(sim.segment_data(0)[0], 10)
      << "T2 must read c1's value despite T4's later transfer";
  EXPECT_EQ(r.clobbered_reads, 0u);
}

TEST(Rcsim, NaiveSharedRegisterClobbers) {
  // Same scenario with the broken single-register-per-physical-channel
  // alternative: T4's value overwrites T1's before T2 consumes it.
  TaskGraph g("naive");
  Program t1;
  t1.load_imm(0, 10).send(0, 0).halt();
  Program t4;
  t4.compute(3).load_imm(0, 102).send(1, 0).halt();
  Program t2;
  t2.compute(30).recv(1, 0).load_imm(0, 0).store(0, 0, 1).halt();
  Program t3;
  t3.compute(1).halt();  // never consumes; the shared register is clobbered
  const TaskId task1 = g.add_task("T1", t1, 1);
  const TaskId task2 = g.add_task("T2", t2, 1);
  const TaskId task3 = g.add_task("T3", t3, 1);
  const TaskId task4 = g.add_task("T4", t4, 1);
  g.add_channel("c1", 16, task1, task2);
  g.add_channel("c4", 16, task4, task3);
  g.add_segment("out", 64, 16);

  Binding b = single_bank_binding(g, 4);
  b.channel_to_phys = {0, 0};
  b.num_phys_channels = 1;
  b.phys_channel_names = {"c1_4"};

  const InsertionResult ins = core::insert_arbitration(g, b, {});
  SimOptions options;
  options.naive_shared_channel_register = true;
  options.strict = false;
  SystemSimulator sim(ins.graph, b, ins.plan, options);
  const SimResult r = sim.run({task1, task2, task3, task4});
  EXPECT_GT(r.clobbered_reads, 0u);
  EXPECT_EQ(sim.segment_data(0)[0], 102) << "T2 read T4's value — data loss";
}

// ----------------------------------------------------------- error paths

TEST(Rcsim, DeadlockDetected) {
  TaskGraph g("deadlock");
  Program rcv;
  rcv.recv(0, 0).halt();
  Program snd;
  snd.compute(1).halt();  // never sends
  const TaskId r = g.add_task("r", rcv, 1);
  const TaskId s = g.add_task("s", snd, 1);
  g.add_channel("c", 16, s, r);
  Binding b = single_bank_binding(g, 2);
  b.num_banks = 0;
  b.bank_names.clear();
  SystemSimulator sim(g, b, empty_plan(b));
  EXPECT_THROW(sim.run({r, s}), CheckError);
}

TEST(Rcsim, OutOfBoundsAddressDiagnosed) {
  TaskGraph g("oob");
  g.add_segment("s", 8, 2);
  Program p;
  p.load_imm(0, 0).store(0, 0, 0, 99).halt();
  g.add_task("t", p, 1);
  const Binding b = single_bank_binding(g, 1);
  SystemSimulator sim(g, b, empty_plan(b));
  EXPECT_THROW(sim.run({0}), CheckError);
}

TEST(Rcsim, SegmentPreloadAndReadback) {
  TaskGraph g("mem");
  g.add_segment("s", 64, 8);
  Program p;
  p.load_imm(0, 0).load(1, 0, 0, 2).store(0, 0, 1, 3).halt();
  g.add_task("t", p, 1);
  const Binding b = single_bank_binding(g, 1);
  SystemSimulator sim(g, b, empty_plan(b));
  sim.write_segment(0, {1, 2, 3});
  sim.run({0});
  EXPECT_EQ(sim.segment_data(0)[3], 3);
  EXPECT_THROW(sim.write_segment(0, std::vector<std::int64_t>(99)),
               CheckError);
  EXPECT_THROW(sim.segment_data(7), CheckError);
}

}  // namespace
}  // namespace rcarb::rcsim
