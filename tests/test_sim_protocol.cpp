// Protocol-timing regressions: the retry-timeout boundary, and the
// hung-grant watchdog's hold_streak bookkeeping (rotation, force-release,
// stuck-Grant windows, and waiters hidden inside a retry backoff).
#include <gtest/gtest.h>

#include "core/insertion.hpp"
#include "fault/fault.hpp"
#include "rcsim/system_sim.hpp"

namespace rcarb {
namespace {

using rcsim::DiagKind;
using rcsim::SimOptions;
using rcsim::SimResult;
using rcsim::SystemSimulator;
using tg::Program;
using tg::TaskGraph;
using tg::TaskId;

/// Hand-built one-bank rig: every task in `ports` contends for resource 0
/// ("BANK") through one arbiter, bypassing the insertion pass so programs
/// can violate or stress the protocol deliberately.
struct BankRig {
  TaskGraph graph{"protocol"};
  core::Binding binding;
  core::ArbitrationPlan plan;

  BankRig() { graph.add_segment("s0", 64, 16); }

  TaskId add(const std::string& name, const Program& p) {
    return graph.add_task(name, p, 1);
  }

  void finish(std::vector<TaskId> ports) {
    binding.task_to_pe.resize(graph.num_tasks());
    for (std::size_t i = 0; i < binding.task_to_pe.size(); ++i)
      binding.task_to_pe[i] = static_cast<int>(i);
    binding.segment_to_bank.assign(graph.num_segments(), 0);
    binding.channel_to_phys.assign(graph.num_channels(), -1);
    binding.num_banks = 1;
    binding.bank_names = {"BANK"};
    core::ArbiterInstance inst;
    inst.resource = 0;
    inst.resource_name = "BANK";
    inst.ports = std::move(ports);
    plan.arbiters.push_back(inst);
    plan.arbiters_of_resource.assign(1, {0});
  }
};

std::size_t hung_count_for(const SimResult& r, TaskId t) {
  std::size_t n = 0;
  for (const auto& d : r.diagnostics)
    if (d.kind == DiagKind::kHungGrant && d.task == static_cast<int>(t)) ++n;
  return n;
}

// --------------------------------------------------- retry-timeout boundary

// Fig. 8 retry semantics: the grant is sampled *before* the timeout test,
// so a grant arriving on exactly the retry_timeout-th grantless cycle is
// taken, not backed off.  A holds the bank long enough that B's grant
// arrives after exactly 8 grantless cycles: rt=8 must behave like rt=0
// (no retry), rt=7 must back off once.
SimResult run_boundary(int retry_timeout) {
  BankRig rig;
  Program a;
  a.acquire(0).compute(5).load_imm(0, 0).store(0, 0, 0).release(0).halt();
  Program b;
  b.load_imm(0, 0).acquire(0).store(0, 0, 0).release(0).halt();
  const TaskId ta = rig.add("A", a);
  const TaskId tb = rig.add("B", b);
  rig.finish({ta, tb});
  rig.plan.retry_timeout = retry_timeout;
  SimOptions so;
  so.strict = false;
  SystemSimulator sim(rig.graph, rig.binding, rig.plan, so);
  return sim.run({ta, tb});
}

TEST(RetryBoundary, GrantOnExactlyTheTimeoutCycleIsTaken) {
  const SimResult base = run_boundary(0);
  const SimResult at = run_boundary(8);  // grant lands on cycle rt exactly
  EXPECT_EQ(at.retries, 0u) << "boundary grant must not trigger a backoff";
  EXPECT_EQ(at.tasks[1].finish_cycle, base.tasks[1].finish_cycle);
  EXPECT_EQ(at.cycles, base.cycles);
}

TEST(RetryBoundary, GrantOneCycleLaterThanTheTimeoutBacksOff) {
  const SimResult base = run_boundary(0);
  const SimResult below = run_boundary(7);
  EXPECT_EQ(below.retries, 1u);
  EXPECT_GT(below.tasks[1].finish_cycle, base.tasks[1].finish_cycle);
}

// ------------------------------------- watchdog vs. retry-backoff waiters

// Regression (pre-fix: the watchdog counted only wire-level requests, so a
// waiter inside a bounded backoff — Req deasserted — zeroed the hold
// streak every episode and a hung holder was never detected).  A idle-holds
// the bank for 60 cycles while B contends with retry enabled: the hardened
// watchdog must evict A just as it does with retry disabled.
SimResult run_hung_holder(int retry_timeout) {
  BankRig rig;
  Program a;
  a.acquire(0).load_imm(0, 0).store(0, 0, 0).compute(60).store(0, 0, 1)
      .release(0).halt();
  Program b;
  b.compute(4).acquire(0).load_imm(0, 0).store(0, 0, 2).release(0).halt();
  const TaskId ta = rig.add("A", a);
  const TaskId tb = rig.add("B", b);
  rig.finish({ta, tb});
  rig.plan.retry_timeout = retry_timeout;
  SimOptions so;
  so.strict = false;
  so.watchdog_timeout = 8;
  so.harden = true;
  SystemSimulator sim(rig.graph, rig.binding, rig.plan, so);
  return sim.run({ta, tb});
}

TEST(Watchdog, BackedOffWaiterStillArmsTheWatchdog) {
  const SimResult no_retry = run_hung_holder(0);
  ASSERT_GE(no_retry.hung_grants, 1u);
  ASSERT_GE(no_retry.watchdog_releases, 1u);

  const SimResult with_retry = run_hung_holder(4);
  EXPECT_GE(with_retry.hung_grants, 1u)
      << "a waiter in retry backoff must count as starved";
  EXPECT_GE(with_retry.watchdog_releases, 1u);
  EXPECT_EQ(with_retry.tasks[1].finish_cycle,
            no_retry.tasks[1].finish_cycle)
      << "retry must not delay the eviction of a hung holder";
}

// --------------------------------------- force-release vs. stuck-1 phantom

// Regression (pre-fix: the force-release mask was applied to the request
// lines *before* the stuck-at fault loop ORed the stuck-1 bit back in, so
// a phantom requester created by kReqStuck1 could never be evicted).  The
// watchdog's mask is arbiter-internal — downstream of the faulted wire.
SimResult run_phantom(bool harden) {
  BankRig rig;
  Program a;
  a.acquire(0).load_imm(0, 0).store(0, 0, 0).release(0).halt();
  Program b;
  b.compute(10).acquire(0).load_imm(0, 0).store(0, 0, 1).release(0).halt();
  Program c;
  c.compute(10).acquire(0).load_imm(0, 0).store(0, 0, 2).release(0).halt();
  const TaskId ta = rig.add("A", a);
  const TaskId tb = rig.add("B", b);
  const TaskId tc = rig.add("C", c);
  rig.finish({ta, tb, tc});
  fault::FaultEvent stuck;
  stuck.kind = fault::FaultKind::kReqStuck1;
  stuck.cycle = 6;
  stuck.arbiter = 0;
  stuck.port = 0;  // A's line sticks high after A finished
  stuck.duration = 500;
  SimOptions so;
  so.strict = false;
  so.watchdog_timeout = 8;
  so.harden = harden;
  so.no_progress_window = 2000;
  so.faults = {stuck};
  SystemSimulator sim(rig.graph, rig.binding, rig.plan, so);
  return sim.run({ta, tb, tc});
}

TEST(Watchdog, ForceReleaseEvictsStuck1Phantom) {
  const SimResult soft = run_phantom(false);
  ASSERT_GE(soft.hung_grants, 1u) << "the phantom hold must be detected";
  EXPECT_GT(soft.tasks[1].finish_cycle, 400u)
      << "unhardened, B should stay starved for the whole stuck window";

  const SimResult hard = run_phantom(true);
  EXPECT_GE(hard.watchdog_releases, 1u);
  EXPECT_LT(hard.tasks[1].finish_cycle, 60u)
      << "hardened, the watchdog must evict the phantom holder promptly";
  EXPECT_LT(hard.tasks[2].finish_cycle, 60u);
  EXPECT_FALSE(hard.deadlocked);
}

// ------------------------------------------------ hold_streak bookkeeping

// Three contenders; A idle-holds for `hold_a` cycles, then B for `hold_b`.
SimResult run_rotation(int hold_a, int hold_b, int timeout, bool harden) {
  BankRig rig;
  Program a;
  a.acquire(0).load_imm(0, 0).store(0, 0, 0).compute(hold_a).store(0, 0, 1)
      .release(0).halt();
  Program b;
  b.acquire(0).load_imm(0, 0).store(0, 0, 2).compute(hold_b).store(0, 0, 3)
      .release(0).halt();
  Program c;
  c.acquire(0).load_imm(0, 0).store(0, 0, 4).release(0).halt();
  const TaskId ta = rig.add("A", a);
  const TaskId tb = rig.add("B", b);
  const TaskId tc = rig.add("C", c);
  rig.finish({ta, tb, tc});
  SimOptions so;
  so.strict = false;
  so.watchdog_timeout = timeout;
  so.harden = harden;
  SystemSimulator sim(rig.graph, rig.binding, rig.plan, so);
  return sim.run({ta, tb, tc});
}

TEST(Watchdog, StreakResetsWhenTheGrantRotates) {
  // Each holder idles under the timeout; a stale streak carried across the
  // rotation would mis-flag the second holder.
  const SimResult r = run_rotation(6, 6, 8, false);
  EXPECT_EQ(r.hung_grants, 0u);
}

TEST(Watchdog, OnlyTheActuallyHungHolderIsFlagged) {
  const SimResult r = run_rotation(9, 2, 8, false);
  EXPECT_EQ(r.hung_grants, 1u);
  EXPECT_EQ(hung_count_for(r, 0), 1u) << "A idled past the timeout";
  EXPECT_EQ(hung_count_for(r, 1), 0u) << "B must not inherit A's streak";
}

TEST(Watchdog, NextHolderAfterForceReleaseStartsAFreshStreak) {
  const SimResult r = run_rotation(20, 2, 8, true);
  EXPECT_GE(r.watchdog_releases, 1u);
  EXPECT_EQ(hung_count_for(r, 0), 1u);
  EXPECT_EQ(hung_count_for(r, 1), 0u)
      << "the force-released holder's streak must not leak to B";
}

TEST(Watchdog, StuckGrantWindowDoesNotLeakStreakToNextHolder) {
  // A GrantStuck0 window pins A grantless for 6 cycles (< timeout 8); once
  // the window lifts, A proceeds and B takes over.  Nobody idles past the
  // timeout, so nobody may be flagged.
  BankRig rig;
  Program a;
  a.acquire(0).load_imm(0, 0).store(0, 0, 0).store(0, 0, 1).release(0)
      .halt();
  Program b;
  b.acquire(0).load_imm(0, 0).store(0, 0, 2).compute(3).store(0, 0, 3)
      .release(0).halt();
  Program c;
  c.acquire(0).load_imm(0, 0).store(0, 0, 4).release(0).halt();
  const TaskId ta = rig.add("A", a);
  const TaskId tb = rig.add("B", b);
  const TaskId tc = rig.add("C", c);
  rig.finish({ta, tb, tc});
  fault::FaultEvent stuck;
  stuck.kind = fault::FaultKind::kGrantStuck0;
  stuck.cycle = 1;
  stuck.arbiter = 0;
  stuck.port = 0;
  stuck.duration = 6;
  SimOptions so;
  so.strict = false;
  so.watchdog_timeout = 8;
  so.faults = {stuck};
  SystemSimulator sim(rig.graph, rig.binding, rig.plan, so);
  const SimResult r = sim.run({ta, tb, tc});
  EXPECT_EQ(r.hung_grants, 0u);
}

TEST(Watchdog, QuarantineDrainMustNotTripTheWatchdog) {
  // A holds the bank mid-burst when the bank dies.  The supervisor
  // classifies the fault and starts draining: B's request is masked and
  // A's stores fail-stop, so A "idles" on the grant while B waits — which
  // is exactly the watchdog's hung-grant signature.  But the idle-hold is
  // the supervisor's doing: tripping the watchdog here would flag (and,
  // hardened, force-release) the very burst the drain is waiting out.
  // The drain's own drain_timeout is the bound for that burst, so the
  // watchdog must stay silent for the whole quarantine.
  BankRig rig;
  Program a;
  a.acquire(0).load_imm(0, 0);
  for (int k = 0; k < 12; ++k) a.store(0, 0, k % 8);
  a.release(0).halt();
  Program b;
  b.load_imm(0, 0).acquire(0).store(0, 0, 15).release(0).halt();
  const TaskId ta = rig.add("A", a);
  const TaskId tb = rig.add("B", b);
  rig.finish({ta, tb});
  fault::FaultEvent dead;
  dead.kind = fault::FaultKind::kBankFailure;
  dead.cycle = 4;
  dead.bank = 0;
  SimOptions so;
  so.strict = false;
  so.watchdog_timeout = 6;
  so.no_progress_window = 120;
  so.degrade.enabled = true;
  so.degrade.strikes = 3;
  so.degrade.strike_window = 32;
  so.degrade.drain_timeout = 40;  // > watchdog_timeout: the hazard window
  so.faults = {dead};
  SystemSimulator sim(rig.graph, rig.binding, rig.plan, so);
  const SimResult r = sim.run({ta, tb});

  EXPECT_EQ(r.quarantined, 1u) << "the dead bank must still be classified";
  EXPECT_EQ(r.count(DiagKind::kQuarantine), 1u);
  EXPECT_EQ(r.hung_grants, 0u)
      << "the watchdog fired on a supervisor-induced idle-hold";
  EXPECT_EQ(r.count(DiagKind::kHungGrant), 0u);
  EXPECT_EQ(r.drain_aborts, 1u)
      << "the dead bank never retires A's burst; drain_timeout bounds it";
}

}  // namespace
}  // namespace rcarb
