#include <gtest/gtest.h>

#include "core/rr_fsm.hpp"
#include "netlist/simulator.hpp"
#include "support/rng.hpp"
#include "synth/flow.hpp"

namespace rcarb::synth {
namespace {

/// Cross-checks a synthesized netlist against the reference FSM semantics
/// by co-simulating random input sequences.
void cosimulate(const Fsm& fsm, const SynthResult& result, int cycles,
                std::uint64_t seed) {
  netlist::Simulator sim(result.netlist);
  // Resolve interface names once — the cycle loop must not hash strings.
  std::vector<netlist::NetId> in_net, out_net;
  for (int i = 0; i < fsm.num_inputs(); ++i)
    in_net.push_back(*result.netlist.find_net(fsm.input_name(i)));
  for (int o = 0; o < fsm.num_outputs(); ++o)
    out_net.push_back(*result.netlist.find_net(fsm.output_name(o)));
  Rng rng(seed);
  StateId state = fsm.reset_state();
  for (int cyc = 0; cyc < cycles; ++cyc) {
    const std::uint64_t in = rng.next_below(1ull << fsm.num_inputs());
    for (int i = 0; i < fsm.num_inputs(); ++i)
      sim.set_input(in_net[static_cast<std::size_t>(i)], (in >> i) & 1);
    sim.settle();
    const auto want = fsm.step(state, in);
    for (int o = 0; o < fsm.num_outputs(); ++o)
      ASSERT_EQ(sim.get(out_net[static_cast<std::size_t>(o)]),
                ((want.outputs >> o) & 1) != 0)
          << "output " << fsm.output_name(o) << " cycle " << cyc;
    sim.clock();
    state = want.next_state;
  }
  EXPECT_EQ(sim.name_lookups(), 0u);
}

Fsm gray_counter() {
  // A 4-state up/down counter with a carry-style Mealy output.
  Fsm fsm("updown");
  for (int i = 0; i < 4; ++i) fsm.add_state("s" + std::to_string(i));
  fsm.add_input("up");
  fsm.add_output("wrap");
  for (StateId s = 0; s < 4; ++s) {
    const StateId up = (s + 1) % 4;
    const StateId down = (s + 3) % 4;
    fsm.add_transition(s, logic::Cube::literal(0, true), up,
                       up == 0 ? 0b1u : 0u);
    fsm.add_transition(s, logic::Cube::literal(0, false), down,
                       down == 3 ? 0b1u : 0u);
  }
  return fsm;
}

struct FlowParam {
  FlowKind kind;
  Encoding encoding;
};

class SynthFlowSweep : public ::testing::TestWithParam<FlowParam> {};

TEST_P(SynthFlowSweep, CounterMatchesReference) {
  const Fsm fsm = gray_counter();
  FlowOptions options;
  options.kind = GetParam().kind;
  options.encoding = GetParam().encoding;
  const SynthResult result = synthesize_fsm(fsm, options);
  cosimulate(fsm, result, 500, 77);
}

TEST_P(SynthFlowSweep, RoundRobin4MatchesReference) {
  const Fsm fsm = core::build_round_robin_fsm(4);
  FlowOptions options;
  options.kind = GetParam().kind;
  options.encoding = GetParam().encoding;
  const SynthResult result = synthesize_fsm(fsm, options);
  cosimulate(fsm, result, 800, 78);
}

INSTANTIATE_TEST_SUITE_P(
    AllFlows, SynthFlowSweep,
    ::testing::Values(FlowParam{FlowKind::kExpressLike, Encoding::kOneHot},
                      FlowParam{FlowKind::kExpressLike, Encoding::kCompact},
                      FlowParam{FlowKind::kExpressLike, Encoding::kGray},
                      FlowParam{FlowKind::kSynplifyLike, Encoding::kOneHot},
                      FlowParam{FlowKind::kSynplifyLike, Encoding::kCompact}));

TEST(SynthFlow, SynplifyForcesOneHot) {
  const Fsm fsm = gray_counter();
  FlowOptions options;
  options.kind = FlowKind::kSynplifyLike;
  options.encoding = Encoding::kCompact;  // ignored, as the paper notes
  const SynthResult result = synthesize_fsm(fsm, options);
  EXPECT_EQ(result.used_encoding, Encoding::kOneHot);
  EXPECT_EQ(result.netlist.num_dffs(), fsm.num_states());
}

TEST(SynthFlow, CompactUsesFewerRegisters) {
  const Fsm fsm = core::build_round_robin_fsm(5);  // 10 states
  FlowOptions oh, cp;
  oh.encoding = Encoding::kOneHot;
  cp.encoding = Encoding::kCompact;
  EXPECT_EQ(synthesize_fsm(fsm, oh).netlist.num_dffs(), 10u);
  EXPECT_EQ(synthesize_fsm(fsm, cp).netlist.num_dffs(), 4u);
}

TEST(SynthFlow, MinimizerReducesCubes) {
  const Fsm fsm = core::build_round_robin_fsm(3);
  FlowOptions with, without;
  without.run_minimizer = false;
  const SynthResult a = synthesize_fsm(fsm, with);
  const SynthResult b = synthesize_fsm(fsm, without);
  EXPECT_LE(a.sop_cubes, b.sop_cubes);
}

TEST(SynthFlow, ReportsPackAndMapStats) {
  const Fsm fsm = core::build_round_robin_fsm(4);
  const SynthResult result = synthesize_fsm(fsm, {});
  EXPECT_GT(result.clb.clbs, 0u);
  EXPECT_GT(result.map.luts, 0u);
  EXPECT_GT(result.map.depth, 0);
  EXPECT_GT(result.aig_ands, 0u);
  EXPECT_EQ(result.clb.luts, result.netlist.num_luts());
  EXPECT_EQ(result.clb.ffs, result.netlist.num_dffs());
}

}  // namespace
}  // namespace rcarb::synth
