// Open-loop service engine: arrival processes, bounded queues, overload
// policies, and the client-side retry/timeout/backoff loop.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "service/arrivals.hpp"
#include "service/service.hpp"
#include "support/check.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"

namespace rcarb::service {
namespace {

// ---------------------------------------------------------------- arrivals

TEST(Arrivals, DeterministicFromSeed) {
  ArrivalOptions ao;
  ao.kind = ArrivalKind::kBursty;
  ao.rate = 0.4;
  ArrivalProcess a(ao, 123);
  ArrivalProcess b(ao, 123);
  ArrivalProcess c(ao, 124);
  bool any_diff_seed_divergence = false;
  for (int i = 0; i < 5000; ++i) {
    const int x = a.step();
    EXPECT_EQ(x, b.step()) << "same seed must give the same stream";
    if (x != c.step()) any_diff_seed_divergence = true;
  }
  EXPECT_TRUE(any_diff_seed_divergence)
      << "different seeds should give different streams";
}

TEST(Arrivals, MeanMatchesConfiguredRateForEveryKind) {
  // Bursty and diurnal modulate the instantaneous rate but are normalized
  // to preserve the configured mean.
  for (const ArrivalKind kind :
       {ArrivalKind::kPoisson, ArrivalKind::kBursty, ArrivalKind::kDiurnal}) {
    ArrivalOptions ao;
    ao.kind = kind;
    ao.rate = 0.3;
    ArrivalProcess p(ao, 7);
    const int n = 200'000;
    std::int64_t total = 0;
    for (int i = 0; i < n; ++i) total += p.step();
    const double mean = static_cast<double>(total) / n;
    EXPECT_NEAR(mean, ao.rate, 0.03) << to_string(kind);
  }
}

TEST(Arrivals, BurstyAndDiurnalActuallyModulate) {
  ArrivalOptions bo;
  bo.kind = ArrivalKind::kBursty;
  bo.rate = 0.5;
  ArrivalProcess burst(bo, 11);
  double lo = 1e9, hi = 0.0;
  for (int i = 0; i < 20'000; ++i) {
    lo = std::min(lo, burst.current_rate());
    hi = std::max(hi, burst.current_rate());
    (void)burst.step();
  }
  EXPECT_LT(lo, 0.5);
  EXPECT_GT(hi, 0.5);

  ArrivalOptions d;
  d.kind = ArrivalKind::kDiurnal;
  d.rate = 0.5;
  d.period = 1000;
  ArrivalProcess diur(d, 11);
  std::vector<double> rates;
  for (int i = 0; i < 1000; ++i) {
    rates.push_back(diur.current_rate());
    (void)diur.step();
  }
  // Triangle: peak mid-period, trough at the ends.
  EXPECT_GT(rates[500], rates[0]);
  EXPECT_GT(rates[500], rates[999]);
}

TEST(Arrivals, ModulatedKindsHoldTheMeanAcrossRatesAndSeeds) {
  // The normalization that keeps bursty/diurnal at the configured mean
  // must not depend on a lucky (rate, seed) pair: the fault benches sweep
  // both and take the mean at face value.
  for (const ArrivalKind kind : {ArrivalKind::kBursty, ArrivalKind::kDiurnal}) {
    for (const double rate : {0.05, 0.2, 0.8}) {
      for (const std::uint64_t seed : {1ull, 42ull, 9001ull}) {
        ArrivalOptions ao;
        ao.kind = kind;
        ao.rate = rate;
        ArrivalProcess p(ao, seed);
        // >= 100 bursty dwells and >= 29 diurnal periods: enough that the
        // modulation averages out and only the mean remains.
        const int n = 120'000;
        std::int64_t total = 0;
        for (int i = 0; i < n; ++i) total += p.step();
        const double mean = static_cast<double>(total) / n;
        EXPECT_NEAR(mean, rate, std::max(0.012, 0.10 * rate))
            << to_string(kind) << " rate=" << rate << " seed=" << seed;
      }
    }
  }
}

TEST(Arrivals, StreamIsAPureFunctionOfOptionsAndSeed) {
  // No hidden global state: an arrival stream must not shift when other
  // processes or RNG streams are stepped between its draws (the service
  // engine interleaves three streams per run and the sweeps run many
  // engines in one process).
  ArrivalOptions ao;
  ao.kind = ArrivalKind::kBursty;
  ao.rate = 0.4;
  std::vector<int> ref;
  ArrivalProcess alone(ao, 5);
  for (int i = 0; i < 4'096; ++i) ref.push_back(alone.step());

  ArrivalProcess interleaved(ao, 5);
  ArrivalProcess noise(ao, 6);
  Rng unrelated(99);
  for (int i = 0; i < 4'096; ++i) {
    (void)noise.step();
    (void)unrelated.next_below(10);
    EXPECT_EQ(interleaved.step(), ref[static_cast<std::size_t>(i)]);
  }
}

// ----------------------------------------------------------------- engine

/// Small, fast configuration: 2 resources x 4 ports, 4-cycle service, so
/// saturation throughput is ~0.5 requests/cycle.
ServiceOptions small_options() {
  ServiceOptions o;
  o.resources = 2;
  o.ports = 4;
  o.service_cycles = 4;
  o.queue_capacity = 8;
  o.block_backlog_factor = 16;
  o.admit_queue_threshold = 4;
  o.retry.timeout = 128;
  o.warmup_cycles = 2'000;
  o.measure_cycles = 6'000;
  o.seed = 99;
  return o;
}

TEST(ServiceEngine, LowLoadDeliversEverythingOnEveryPolicy) {
  for (const OverloadPolicy pol :
       {OverloadPolicy::kBlock, OverloadPolicy::kTailDrop,
        OverloadPolicy::kAdmitShed}) {
    ServiceOptions o = small_options();
    o.policy = pol;
    o.arrivals.rate = 0.15;  // ~30% of capacity
    const ServiceStats s = run_service(o);
    EXPECT_EQ(s.rejected, 0u) << to_string(pol);
    EXPECT_EQ(s.shed, 0u) << to_string(pol);
    EXPECT_EQ(s.timed_out, 0u) << to_string(pol);
    EXPECT_NEAR(s.goodput(), s.offered_rate(), 0.01) << to_string(pol);
    EXPECT_LE(s.latency.percentile(0.999), 64u) << to_string(pol);
  }
}

TEST(ServiceEngine, BlockingCollapsesUnderSustainedOverload) {
  ServiceOptions o = small_options();
  o.policy = OverloadPolicy::kBlock;
  o.arrivals.rate = 1.5;  // 3x capacity
  const ServiceStats s = run_service(o);
  // The deep backlog pushes every sojourn far past the client timeout:
  // the servers stay busy but the goodput is gone.
  EXPECT_LT(s.goodput(), 0.05);
  EXPECT_GT(s.timed_out, 1000u);
}

TEST(ServiceEngine, TailDropBoundsQueueAndSojourn) {
  ServiceOptions o = small_options();
  o.policy = OverloadPolicy::kTailDrop;
  o.arrivals.rate = 1.5;
  const ServiceStats s = run_service(o);
  EXPECT_GE(s.goodput(), 0.4);  // >= 80% of ~0.5 capacity
  EXPECT_LE(s.queue_depth.max(), 8u) << "bounded queue must stay bounded";
  EXPECT_LE(s.latency.max(),
            static_cast<std::uint64_t>(o.retry.timeout));
  EXPECT_GT(s.rejected, 0u);
}

TEST(ServiceEngine, AdmissionControlRetainsGoodputWithLowTail) {
  ServiceOptions o = small_options();
  o.policy = OverloadPolicy::kAdmitShed;
  o.arrivals.rate = 1.5;
  const ServiceStats s = run_service(o);
  EXPECT_GE(s.goodput(), 0.4);
  EXPECT_GT(s.shed, 0u) << "the estimator must arm and shed early";
  // Shedding at depth 4 keeps sojourns to roughly (queue + ports) bursts,
  // comfortably inside the 128-cycle client timeout.
  EXPECT_LE(s.latency.percentile(0.99), 112u);
  EXPECT_EQ(s.timed_out, 0u);
}

TEST(ServiceEngine, RetryBudgetBoundsAmplification) {
  ServiceOptions o = small_options();
  o.policy = OverloadPolicy::kTailDrop;
  o.arrivals.rate = 1.5;
  o.retry.max_retries = 0;  // no retries at all
  const ServiceStats none = run_service(o);
  EXPECT_EQ(none.retries, 0u);
  EXPECT_EQ(none.budget_exhausted, none.rejected + none.shed)
      << "with a zero budget every failure is terminal";

  o.retry.max_retries = 3;
  const ServiceStats some = run_service(o);
  EXPECT_GT(some.retries, 0u);
  EXPECT_GT(some.budget_exhausted, 0u)
      << "sustained overload must exhaust budgets";
  // Each failed attempt schedules at most one retry, so the storm is
  // bounded by the failure count (small slack: retries scheduled just
  // before the measurement window fire just inside it).
  EXPECT_LE(some.retries, some.rejected + some.shed + 64u);
}

TEST(ServiceEngine, TypedDiagnosticsPerPolicy) {
  auto kinds_of = [](const ServiceStats& s, rcsim::DiagKind k) {
    std::size_t n = 0;
    for (const auto& d : s.diagnostics)
      if (d.kind == k) ++n;
    return n;
  };
  ServiceOptions o = small_options();
  o.arrivals.rate = 1.5;

  o.policy = OverloadPolicy::kTailDrop;
  const ServiceStats td = run_service(o);
  EXPECT_GT(kinds_of(td, rcsim::DiagKind::kRejected), 0u);
  EXPECT_LE(td.diagnostics.size(),
            static_cast<std::size_t>(o.max_diagnostics));

  // The estimator starts the measured window disarmed (the warmup reset
  // re-initializes it), so the first util_window of overload rejects at
  // the tail before shedding arms — with retries amplifying each refusal
  // into several records.  The cap must outlast that whole ramp.
  o.policy = OverloadPolicy::kAdmitShed;
  o.max_diagnostics = 8192;
  const ServiceStats as = run_service(o);
  EXPECT_GT(kinds_of(as, rcsim::DiagKind::kShed), 0u);
  o.max_diagnostics = small_options().max_diagnostics;

  o.policy = OverloadPolicy::kBlock;
  const ServiceStats bl = run_service(o);
  EXPECT_GT(kinds_of(bl, rcsim::DiagKind::kTimedOut), 0u);
}

TEST(ServiceEngine, PerResourceHistogramsMergeIntoTotals) {
  ServiceOptions o = small_options();
  o.policy = OverloadPolicy::kAdmitShed;
  o.arrivals.rate = 0.4;
  const ServiceStats s = run_service(o);
  std::uint64_t latency_n = 0, completed = 0;
  for (const auto& rs : s.per_resource) {
    latency_n += rs.latency.count();
    completed += rs.completed;
    EXPECT_EQ(rs.arbiter.ports, o.ports);
    EXPECT_TRUE(rs.arbiter.within_n_minus_1_bound()) << rs.name;
  }
  EXPECT_EQ(s.latency.count(), latency_n);
  EXPECT_EQ(s.completed, completed);
  EXPECT_EQ(s.latency.count(), s.completed)
      << "only goodput lands in the latency histogram";
}

TEST(ServiceEngine, MeasuredCapacityIsSaneAndDeterministic) {
  ServiceOptions o = small_options();
  const double cap = measure_capacity(o);
  // 2 resources x one 4-cycle burst each: at most 0.5/cycle, and a busy
  // round-robin pipeline should get close to it.
  EXPECT_GT(cap, 0.35);
  EXPECT_LE(cap, 0.55);
  EXPECT_EQ(cap, measure_capacity(o));
}

TEST(ServiceEngine, RunsAreAPureFunctionOfOptions) {
  ServiceOptions o = small_options();
  o.policy = OverloadPolicy::kAdmitShed;
  o.arrivals.kind = ArrivalKind::kBursty;
  o.arrivals.rate = 0.8;
  const ServiceStats a = run_service(o);
  const ServiceStats b = run_service(o);
  EXPECT_EQ(a.summarize(), b.summarize());
  EXPECT_EQ(a.latency.percentile(0.999), b.latency.percentile(0.999));
  EXPECT_EQ(a.queue_depth.sum(), b.queue_depth.sum());
  EXPECT_EQ(a.diagnostics.size(), b.diagnostics.size());
}

TEST(ServiceEngine, SweepIsByteIdenticalSerialVsParallel) {
  // The bench's sweep discipline in miniature: every cell's seed derives
  // from its index, the reduction runs in index order, so the rendered
  // report cannot depend on the job count.
  auto sweep = [](int jobs) {
    std::vector<std::string> lines;
    ordered_map_reduce<ServiceStats>(
        6,
        [&](std::size_t i) {
          ServiceOptions o = small_options();
          o.policy = static_cast<OverloadPolicy>(i % 3);
          o.arrivals.rate = 0.2 + 0.25 * static_cast<double>(i);
          o.seed = derive_seed(42, i);
          return run_service(o);
        },
        [&](std::size_t i, ServiceStats s) {
          lines.push_back(std::to_string(i) + ": " + s.summarize() +
                          " p999=" +
                          std::to_string(s.latency.percentile(0.999)));
        },
        jobs);
    return lines;
  };
  EXPECT_EQ(sweep(1), sweep(4));
}

TEST(ServiceEngine, RejectsNonsenseOptions) {
  // 65 ports used to be the canonical nonsense value; the wide engine made
  // everything up to kMaxWideInputs legal, so the fence moved there.
  ServiceOptions o = small_options();
  o.ports = core::kMaxWideInputs + 1;
  EXPECT_THROW((void)run_service(o), CheckError);
  o = small_options();
  o.ports = 0;
  EXPECT_THROW((void)run_service(o), CheckError);
  o = small_options();
  o.resources = 0;
  EXPECT_THROW((void)run_service(o), CheckError);
  o = small_options();
  o.queue_capacity = 0;
  EXPECT_THROW((void)run_service(o), CheckError);
  o = small_options();
  o.arbiter_arity = 5;
  EXPECT_THROW((void)run_service(o), CheckError);
  // kAuto without a timing budget is ambiguous, not a default.
  o = small_options();
  o.arbiter_kind = core::ArbiterChoice::kAuto;
  o.arbiter_fmax_budget_mhz = 0.0;
  EXPECT_THROW((void)run_service(o), CheckError);
}

TEST(ServiceEngine, RejectsRetryTimeoutInsideTheFirstBackoff) {
  // A client whose timeout expires before its first retry even fires can
  // never be served by a retry — every re-attempt is dead on arrival and
  // the retry counters measure nothing.  The engine refuses the combo
  // instead of silently burning the budget.
  ServiceOptions o = small_options();
  o.retry.timeout = 8;
  o.retry.backoff_base = 8;  // first retry lands at +8, at the deadline
  EXPECT_THROW((void)run_service(o), CheckError);
  o.retry.timeout = 9;  // strictly past the first backoff: legal
  EXPECT_NO_THROW((void)run_service(o));
  // With retries disabled the timeout only bounds service, so any
  // positive value is fine.
  o.retry.timeout = 8;
  o.retry.max_retries = 0;
  EXPECT_NO_THROW((void)run_service(o));
}

// ------------------------------------------------- arbiter kind threading

TEST(ServiceEngine, ScalableKindsMatchFlatAggregatesAtWordWidths) {
  // Each resource serves one request at a time (the grant holds until the
  // slot releases) and all three structures are work-conserving, so the
  // aggregate counters are kind-invariant at any width: only the rotation
  // order — and with it individual latencies — may differ.  A timeout far
  // past any sojourn keeps the counters order-independent.
  for (const int ports : {4, 48}) {
    for (const OverloadPolicy pol :
         {OverloadPolicy::kTailDrop, OverloadPolicy::kAdmitShed}) {
      ServiceOptions o = small_options();
      o.ports = ports;
      o.policy = pol;
      o.arrivals.rate = 1.5;
      o.retry.timeout = 1 << 20;
      o.warmup_cycles = 1'000;
      o.measure_cycles = 4'000;
      const ServiceStats flat = run_service(o);
      EXPECT_EQ(flat.per_resource[0].arbiter.kind, "flat");
      for (const core::ArbiterChoice kind :
           {core::ArbiterChoice::kHierarchical, core::ArbiterChoice::kPrefix}) {
        o.arbiter_kind = kind;
        const ServiceStats s = run_service(o);
        const char* label = core::to_string(kind);
        EXPECT_EQ(s.per_resource[0].arbiter.kind, label);
        EXPECT_EQ(s.offered, flat.offered) << label;
        EXPECT_EQ(s.completed, flat.completed) << label;
        EXPECT_EQ(s.rejected, flat.rejected) << label;
        EXPECT_EQ(s.shed, flat.shed) << label;
        EXPECT_EQ(s.timed_out, flat.timed_out) << label;
        EXPECT_EQ(s.retries, flat.retries) << label;
        EXPECT_EQ(s.queue_depth.sum(), flat.queue_depth.sum()) << label;
      }
      o.arbiter_kind = core::ArbiterChoice::kFlatFsm;
    }
  }
}

TEST(ServiceEngine, WidePortsServeThroughEveryKind) {
  // Past 64 ports the engine drives the arbiter via step_wide; all three
  // kinds (flat through FlatWideArbiter) must carry a 256-port resource.
  for (const core::ArbiterChoice kind :
       {core::ArbiterChoice::kFlatFsm, core::ArbiterChoice::kHierarchical,
        core::ArbiterChoice::kPrefix}) {
    ServiceOptions o;
    o.resources = 2;
    o.ports = 256;
    o.service_cycles = 1;
    o.queue_capacity = 64;
    o.policy = OverloadPolicy::kTailDrop;
    o.arbiter_kind = kind;
    o.arrivals.rate = 1.2;  // under the 2/cycle capacity
    o.warmup_cycles = 500;
    o.measure_cycles = 2'000;
    o.seed = 7;
    const ServiceStats s = run_service(o);
    const char* label = core::to_string(kind);
    EXPECT_EQ(s.per_resource[0].arbiter.ports, 256) << label;
    EXPECT_EQ(s.per_resource[0].arbiter.kind,
              kind == core::ArbiterChoice::kFlatFsm ? "flat" : label);
    EXPECT_GT(s.completed, 0u) << label;
    EXPECT_NEAR(s.goodput(), s.offered_rate(), 0.05) << label;
    EXPECT_EQ(s.timed_out, 0u) << label;
  }
}

TEST(ServiceEngine, WideSweepIsByteIdenticalSerialVsParallel) {
  // The bench's wide-port cells in miniature: 256 ports, all three kinds,
  // two loads — the rendered lines must not depend on the job count.
  auto sweep = [](int jobs) {
    std::vector<std::string> lines;
    ordered_map_reduce<ServiceStats>(
        6,
        [&](std::size_t i) {
          ServiceOptions o;
          o.resources = 2;
          o.ports = 256;
          o.service_cycles = 1;
          o.queue_capacity = 32;
          o.policy = OverloadPolicy::kTailDrop;
          o.arbiter_kind = static_cast<core::ArbiterChoice>(1 + i % 3);
          o.arrivals.rate = 0.8 + 0.6 * static_cast<double>(i / 3);
          o.warmup_cycles = 200;
          o.measure_cycles = 1'500;
          o.seed = derive_seed(77, i);
          return run_service(o);
        },
        [&](std::size_t i, ServiceStats s) {
          lines.push_back(std::to_string(i) + ": " + s.summarize());
        },
        jobs);
    return lines;
  };
  EXPECT_EQ(sweep(1), sweep(4));
}

TEST(ServiceEngine, EstimatorRestartsAtTheMeasurementBoundary) {
  // Regression for the warmup -> measure reset: the estimator's window
  // phase and armed/disarmed flag used to leak across reset_stats, so the
  // first shed could land less than one full util_window into the measured
  // run — and *where* it landed depended on warmup_cycles modulo
  // util_window.  Post-fix the estimator cannot arm before one full
  // window, whatever the warmup length.
  for (const std::uint64_t warmup : {0ull, 128ull, 384ull}) {
    ServiceOptions o = small_options();
    o.policy = OverloadPolicy::kAdmitShed;
    o.arrivals.rate = 1.5;  // saturating: util ~1.0 in every window
    o.util_window = 256;
    o.warmup_cycles = warmup;
    o.measure_cycles = 4'000;
    o.max_diagnostics = 4'096;
    const ServiceStats s = run_service(o);
    EXPECT_GT(s.shed, 0u) << "warmup " << warmup;
    std::uint64_t first_shed = 0;
    bool found = false;
    for (const auto& d : s.diagnostics) {
      if (d.kind != rcsim::DiagKind::kShed) continue;
      first_shed = d.cycle;
      found = true;
      break;
    }
    ASSERT_TRUE(found) << "warmup " << warmup;
    EXPECT_GE(first_shed, warmup + 256) << "warmup " << warmup;
  }
}

TEST(ServiceEngine, AutoKindResolvesFromTheBudget) {
  // A floor every structure meets keeps the flat chain at word widths —
  // and the kAuto run is byte-identical to asking for kFlatFsm.
  ServiceOptions o = small_options();
  o.arrivals.rate = 0.6;
  const ServiceStats flat = run_service(o);
  o.arbiter_kind = core::ArbiterChoice::kAuto;
  o.arbiter_fmax_budget_mhz = 1.0;
  const ServiceStats chosen = run_service(o);
  EXPECT_EQ(chosen.summarize(), flat.summarize());
  EXPECT_EQ(chosen.per_resource[0].arbiter.kind, "flat");
  // Past word widths the flat chain is no longer a candidate.
  o.ports = 96;
  const ServiceStats wide = run_service(o);
  EXPECT_EQ(wide.per_resource[0].arbiter.kind, "hier");
}

// ---------------------------------------------------------- retry/backoff

TEST(RetryDelay, SaturatesInsteadOfOverflowingTheShift) {
  RetryPolicy r;  // base 8, limit 256
  EXPECT_EQ(backoff_delay(r, 1), 8u);
  EXPECT_EQ(backoff_delay(r, 2), 16u);
  EXPECT_EQ(backoff_delay(r, 6), 256u);
  EXPECT_EQ(backoff_delay(r, 7), 256u);  // clamped past the limit
  // The regression: attempts past 64 made `base << (attempts - 1)`
  // undefined (x86's masked shift cycled the delay back to `base`).
  // Deep retry budgets are legal, so the exponent must saturate.
  for (const int attempts : {62, 63, 64, 65, 66, 100, 1'000'000})
    EXPECT_EQ(backoff_delay(r, attempts), 256u) << "attempts " << attempts;

  RetryPolicy tiny;
  tiny.backoff_base = 0;
  tiny.backoff_limit = 256;
  EXPECT_EQ(backoff_delay(tiny, 1), 0u);
  EXPECT_EQ(backoff_delay(tiny, 80), 0u);
}

TEST(RetryDelay, JitterNeverExceedsTheConfiguredCap) {
  // The regression: jitter used to be added *after* the backoff_limit
  // clamp, so a capped delay could exceed the cap by 50%.
  RetryPolicy r;
  r.backoff_base = 8;
  r.backoff_limit = 64;
  r.jitter = true;
  Rng rng(2024);
  bool any_jitter = false;
  for (int attempts = 1; attempts <= 80; ++attempts) {
    const std::uint64_t d = retry_delay(r, attempts, rng);
    EXPECT_LE(d, 64u) << "attempts " << attempts;
    if (d > backoff_delay(r, attempts)) any_jitter = true;
  }
  EXPECT_TRUE(any_jitter) << "jitter must still be applied below the cap";
}

TEST(RetryDelay, JitterStreamIsDeterministicAndBoundMatchesTheDelay) {
  // The fix must not change how many draws the jitter stream consumes or
  // their bounds, so seeded runs stay byte-identical: one draw per retry,
  // bounded by half the pre-jitter (already limit-clamped) delay.
  RetryPolicy r;
  Rng a(7), b(7);
  for (int attempts = 1; attempts <= 70; ++attempts) {
    const std::uint64_t bd = backoff_delay(r, attempts);
    const std::uint64_t want =
        std::min(bd + b.next_below(bd / 2 + 1),
                 static_cast<std::uint64_t>(r.backoff_limit));
    EXPECT_EQ(retry_delay(r, attempts, a), want) << "attempts " << attempts;
  }
}

TEST(ServiceEngine, HugeRetryBudgetsSurviveDeepBackoff) {
  // One slow server and a large retry budget walk `attempts` far past 64;
  // before the saturating fix this tripped UBSan (and silently produced
  // short delays on x86).  The engine must keep its accounting intact.
  ServiceOptions o;
  o.resources = 1;
  o.ports = 1;
  o.queue_capacity = 1;
  o.service_cycles = 1'000'000;  // the one server never finishes
  o.policy = OverloadPolicy::kTailDrop;
  o.arrivals.rate = 0.9;
  o.retry.max_retries = 200;
  o.retry.backoff_base = 1;
  o.retry.backoff_limit = 2;
  o.warmup_cycles = 0;
  o.measure_cycles = 4'000;
  o.seed = 5;
  const ServiceStats s = run_service(o);
  EXPECT_GT(s.retries, 0u);
  EXPECT_GT(s.budget_exhausted, 0u);
}

}  // namespace
}  // namespace rcarb::service
