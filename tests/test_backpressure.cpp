// Channel flow control: a 1-deep receiver register stalls its sender while
// full (ready/valid semantics), and a stalled sender must not camp on any
// grant — it deasserts its channel request and re-arbitrates (otherwise a
// blocked holder starves the other sources, a hazard the fuzz suite found).
#include <gtest/gtest.h>

#include "core/insertion.hpp"
#include "rcsim/system_sim.hpp"
#include "support/check.hpp"

namespace rcarb::rcsim {
namespace {

using core::Binding;
using tg::Program;
using tg::TaskGraph;
using tg::TaskId;

TEST(Backpressure, SecondSendWaitsForConsumer) {
  TaskGraph g("bp");
  g.add_segment("out", 64, 8);
  Program producer;
  producer.load_imm(0, 1).send(0, 0).load_imm(0, 2).send(0, 0).halt();
  Program consumer;
  consumer.compute(10)
      .recv(1, 0)
      .load_imm(0, 0)
      .store(0, 0, 1, 0)
      .recv(2, 0)
      .store(0, 0, 2, 1)
      .halt();
  const TaskId p = g.add_task("p", producer, 1);
  const TaskId c = g.add_task("c", consumer, 1);
  g.add_channel("ch", 16, p, c);

  Binding b;
  b.task_to_pe = {0, 1};
  b.segment_to_bank = {0};
  b.num_banks = 1;
  b.bank_names = {"MEM"};
  b.channel_to_phys = {-1};

  core::ArbitrationPlan plan;
  plan.arbiters_of_resource.assign(1, {});
  SystemSimulator sim(g, b, plan);
  const SimResult r = sim.run({p, c});
  // Both values arrive, in order, despite the 1-deep register.
  EXPECT_EQ(sim.segment_data(0)[0], 1);
  EXPECT_EQ(sim.segment_data(0)[1], 2);
  EXPECT_GT(r.tasks[p].backpressure_cycles, 0u)
      << "the second send must have stalled while the register was full";
}

TEST(Backpressure, StalledSenderReleasesSharedChannel) {
  // Two producers merged on one arbitrated channel.  Producer 0's consumer
  // is slow, so its second transfer backpressures; producer 1 must still
  // get the channel in the meantime.
  TaskGraph g("release");
  g.add_segment("out", 64, 8);
  Program p0;
  p0.load_imm(0, 1).send(0, 0).load_imm(0, 2).send(0, 0).halt();
  Program slow_consumer;
  slow_consumer.compute(40)
      .recv(1, 0)
      .load_imm(0, 0)
      .store(0, 0, 1, 0)
      .recv(2, 0)
      .store(0, 0, 2, 1)
      .halt();
  Program p1;
  p1.compute(6).load_imm(0, 7).send(1, 0).halt();
  Program fast_consumer;
  fast_consumer.recv(1, 1).load_imm(0, 0).store(0, 0, 1, 2).halt();
  const TaskId prod0 = g.add_task("prod0", p0, 1);
  const TaskId cons0 = g.add_task("cons0", slow_consumer, 1);
  const TaskId prod1 = g.add_task("prod1", p1, 1);
  const TaskId cons1 = g.add_task("cons1", fast_consumer, 1);
  g.add_channel("c0", 16, prod0, cons0);
  g.add_channel("c1", 16, prod1, cons1);

  Binding b;
  b.task_to_pe = {0, 1, 0, 1};
  b.segment_to_bank = {0};
  b.num_banks = 1;
  b.bank_names = {"MEM"};
  b.channel_to_phys = {0, 0};
  b.num_phys_channels = 1;
  b.phys_channel_names = {"shared"};

  core::InsertionOptions io;
  io.batch_m = 8;  // both sends of prod0 in one burst: forces the hazard
  const auto ins = core::insert_arbitration(g, b, io);
  SystemSimulator sim(ins.graph, b, ins.plan);
  const SimResult r = sim.run({prod0, cons0, prod1, cons1});

  EXPECT_EQ(sim.segment_data(0)[0], 1);
  EXPECT_EQ(sim.segment_data(0)[1], 2);
  EXPECT_EQ(sim.segment_data(0)[2], 7);
  // prod1 must have finished long before the slow consumer freed prod0:
  // the blocked prod0 released the channel while stalled.
  EXPECT_LT(r.tasks[prod1].finish_cycle, r.tasks[prod0].finish_cycle);
  EXPECT_EQ(r.channel_conflicts, 0u);
  EXPECT_EQ(r.protocol_violations, 0u);
}

TEST(Backpressure, UnarbitratedSendDoesNotHoldBankGrant) {
  // A send that can block must not occur while the task holds a *bank*
  // grant (the insertion pass releases it first); otherwise the consumer
  // could never reach its recv through that bank.
  TaskGraph g("bankhold");
  g.add_segment("shared", 64, 8);
  Program producer;
  producer.load_imm(0, 0)
      .store(0, 0, 0, 0)  // bank access (arbitrated)
      .load_imm(1, 5)
      .send(0, 1)         // unarbitrated channel, may block
      .send(0, 1)         // definitely blocks until consumed
      .store(0, 0, 0, 1)  // bank again
      .halt();
  Program consumer;
  consumer.load_imm(0, 0)
      .store(0, 0, 0, 2)  // needs the bank BEFORE it can consume
      .recv(1, 0)
      .recv(2, 0)
      .halt();
  const TaskId p = g.add_task("p", producer, 1);
  const TaskId c = g.add_task("c", consumer, 1);
  g.add_channel("ch", 16, p, c);

  Binding b;
  b.task_to_pe = {0, 1};
  b.segment_to_bank = {0};
  b.num_banks = 1;
  b.bank_names = {"MEM"};
  b.channel_to_phys = {-1};

  const auto ins = core::insert_arbitration(g, b, {});
  // The rewrite must have released the bank before the sends.
  bool saw_release_before_send = false;
  bool holding = false;
  for (const tg::Op& op : ins.graph.task(p).program.ops()) {
    if (op.code == tg::OpCode::kAcquire) holding = true;
    if (op.code == tg::OpCode::kRelease) holding = false;
    if (op.code == tg::OpCode::kSend) {
      EXPECT_FALSE(holding) << "send while holding a bank grant";
      saw_release_before_send = true;
    }
  }
  EXPECT_TRUE(saw_release_before_send);

  SystemSimulator sim(ins.graph, b, ins.plan);
  const SimResult r = sim.run({p, c});
  EXPECT_EQ(r.protocol_violations, 0u);
  EXPECT_EQ(r.bank_conflicts, 0u);
}

}  // namespace
}  // namespace rcarb::rcsim
