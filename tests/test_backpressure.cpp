// Channel flow control: a 1-deep receiver register stalls its sender while
// full (ready/valid semantics), and a stalled sender must not camp on any
// grant — it deasserts its channel request and re-arbitrates (otherwise a
// blocked holder starves the other sources, a hazard the fuzz suite found).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/insertion.hpp"
#include "fault/fault.hpp"
#include "rcsim/system_sim.hpp"
#include "support/check.hpp"

namespace rcarb::rcsim {
namespace {

using core::Binding;
using tg::Program;
using tg::TaskGraph;
using tg::TaskId;

TEST(Backpressure, SecondSendWaitsForConsumer) {
  TaskGraph g("bp");
  g.add_segment("out", 64, 8);
  Program producer;
  producer.load_imm(0, 1).send(0, 0).load_imm(0, 2).send(0, 0).halt();
  Program consumer;
  consumer.compute(10)
      .recv(1, 0)
      .load_imm(0, 0)
      .store(0, 0, 1, 0)
      .recv(2, 0)
      .store(0, 0, 2, 1)
      .halt();
  const TaskId p = g.add_task("p", producer, 1);
  const TaskId c = g.add_task("c", consumer, 1);
  g.add_channel("ch", 16, p, c);

  Binding b;
  b.task_to_pe = {0, 1};
  b.segment_to_bank = {0};
  b.num_banks = 1;
  b.bank_names = {"MEM"};
  b.channel_to_phys = {-1};

  core::ArbitrationPlan plan;
  plan.arbiters_of_resource.assign(1, {});
  SystemSimulator sim(g, b, plan);
  const SimResult r = sim.run({p, c});
  // Both values arrive, in order, despite the 1-deep register.
  EXPECT_EQ(sim.segment_data(0)[0], 1);
  EXPECT_EQ(sim.segment_data(0)[1], 2);
  EXPECT_GT(r.tasks[p].backpressure_cycles, 0u)
      << "the second send must have stalled while the register was full";
}

TEST(Backpressure, StalledSenderReleasesSharedChannel) {
  // Two producers merged on one arbitrated channel.  Producer 0's consumer
  // is slow, so its second transfer backpressures; producer 1 must still
  // get the channel in the meantime.
  TaskGraph g("release");
  g.add_segment("out", 64, 8);
  Program p0;
  p0.load_imm(0, 1).send(0, 0).load_imm(0, 2).send(0, 0).halt();
  Program slow_consumer;
  slow_consumer.compute(40)
      .recv(1, 0)
      .load_imm(0, 0)
      .store(0, 0, 1, 0)
      .recv(2, 0)
      .store(0, 0, 2, 1)
      .halt();
  Program p1;
  p1.compute(6).load_imm(0, 7).send(1, 0).halt();
  Program fast_consumer;
  fast_consumer.recv(1, 1).load_imm(0, 0).store(0, 0, 1, 2).halt();
  const TaskId prod0 = g.add_task("prod0", p0, 1);
  const TaskId cons0 = g.add_task("cons0", slow_consumer, 1);
  const TaskId prod1 = g.add_task("prod1", p1, 1);
  const TaskId cons1 = g.add_task("cons1", fast_consumer, 1);
  g.add_channel("c0", 16, prod0, cons0);
  g.add_channel("c1", 16, prod1, cons1);

  Binding b;
  b.task_to_pe = {0, 1, 0, 1};
  b.segment_to_bank = {0};
  b.num_banks = 1;
  b.bank_names = {"MEM"};
  b.channel_to_phys = {0, 0};
  b.num_phys_channels = 1;
  b.phys_channel_names = {"shared"};

  core::InsertionOptions io;
  io.batch_m = 8;  // both sends of prod0 in one burst: forces the hazard
  const auto ins = core::insert_arbitration(g, b, io);
  SystemSimulator sim(ins.graph, b, ins.plan);
  const SimResult r = sim.run({prod0, cons0, prod1, cons1});

  EXPECT_EQ(sim.segment_data(0)[0], 1);
  EXPECT_EQ(sim.segment_data(0)[1], 2);
  EXPECT_EQ(sim.segment_data(0)[2], 7);
  // prod1 must have finished long before the slow consumer freed prod0:
  // the blocked prod0 released the channel while stalled.
  EXPECT_LT(r.tasks[prod1].finish_cycle, r.tasks[prod0].finish_cycle);
  EXPECT_EQ(r.channel_conflicts, 0u);
  EXPECT_EQ(r.protocol_violations, 0u);
}

TEST(Backpressure, UnarbitratedSendDoesNotHoldBankGrant) {
  // A send that can block must not occur while the task holds a *bank*
  // grant (the insertion pass releases it first); otherwise the consumer
  // could never reach its recv through that bank.
  TaskGraph g("bankhold");
  g.add_segment("shared", 64, 8);
  Program producer;
  producer.load_imm(0, 0)
      .store(0, 0, 0, 0)  // bank access (arbitrated)
      .load_imm(1, 5)
      .send(0, 1)         // unarbitrated channel, may block
      .send(0, 1)         // definitely blocks until consumed
      .store(0, 0, 0, 1)  // bank again
      .halt();
  Program consumer;
  consumer.load_imm(0, 0)
      .store(0, 0, 0, 2)  // needs the bank BEFORE it can consume
      .recv(1, 0)
      .recv(2, 0)
      .halt();
  const TaskId p = g.add_task("p", producer, 1);
  const TaskId c = g.add_task("c", consumer, 1);
  g.add_channel("ch", 16, p, c);

  Binding b;
  b.task_to_pe = {0, 1};
  b.segment_to_bank = {0};
  b.num_banks = 1;
  b.bank_names = {"MEM"};
  b.channel_to_phys = {-1};

  const auto ins = core::insert_arbitration(g, b, {});
  // The rewrite must have released the bank before the sends.
  bool saw_release_before_send = false;
  bool holding = false;
  for (const tg::Op& op : ins.graph.task(p).program.ops()) {
    if (op.code == tg::OpCode::kAcquire) holding = true;
    if (op.code == tg::OpCode::kRelease) holding = false;
    if (op.code == tg::OpCode::kSend) {
      EXPECT_FALSE(holding) << "send while holding a bank grant";
      saw_release_before_send = true;
    }
  }
  EXPECT_TRUE(saw_release_before_send);

  SystemSimulator sim(ins.graph, b, ins.plan);
  const SimResult r = sim.run({p, c});
  EXPECT_EQ(r.protocol_violations, 0u);
  EXPECT_EQ(r.bank_conflicts, 0u);
}

// ---- Sustained saturation (open-loop overload, PR 6). ----

/// N hammerers pounding the same bank(s): every dispatch slot stays full
/// for the whole run, the regime where admission control and retry
/// budgets have to prove they never deadlock and never break protocol.
struct SaturationRig {
  TaskGraph g{"saturate"};
  Binding b;
  std::vector<TaskId> tasks;

  explicit SaturationRig(int hammerers, int banks, int stores_each) {
    for (int k = 0; k < banks; ++k)
      g.add_segment("s" + std::to_string(k), 128, 16);
    for (int t = 0; t < hammerers; ++t) {
      Program p;
      p.load_imm(0, 0);
      for (int k = 0; k < stores_each; ++k)
        p.load_imm(1, 100 * t + k)
            .store(t % banks, 0, 1, (t * 3 + k) % 16)
            .compute(1);
      p.halt();
      tasks.push_back(g.add_task("h" + std::to_string(t), p, 1));
    }
    b.task_to_pe.resize(static_cast<std::size_t>(hammerers));
    for (int t = 0; t < hammerers; ++t)
      b.task_to_pe[static_cast<std::size_t>(t)] = t;
    b.segment_to_bank.resize(static_cast<std::size_t>(banks));
    for (int k = 0; k < banks; ++k) {
      b.segment_to_bank[static_cast<std::size_t>(k)] = k;
      b.bank_names.push_back("B" + std::to_string(k));
    }
    b.num_banks = banks;
  }
};

TEST(Backpressure, AdmissionLimitedSaturationFinishesWithoutDeadlock) {
  SaturationRig rig(6, 1, 12);
  core::InsertionOptions io;
  io.retry_timeout = 4;  // waiters back off instead of camping
  const auto ins = core::insert_arbitration(rig.g, rig.b, io);

  SimOptions so;
  so.strict = true;  // any protocol violation throws
  so.admission_limit = 2;
  SystemSimulator sim(ins.graph, rig.b, ins.plan, so);
  const SimResult r = sim.run(rig.tasks);

  EXPECT_FALSE(r.deadlocked);
  for (const TaskId t : rig.tasks)
    EXPECT_GT(r.tasks[t].finish_cycle, 0u) << "task " << t;
  EXPECT_EQ(r.protocol_violations, 0u);
  EXPECT_GT(r.admission_rejects, 0u)
      << "six hammerers against a 2-wide admission limit must reject";
  EXPECT_GT(r.count(DiagKind::kRejected), 0u);
  // Every store landed despite the rejections (refusal delays, never
  // drops, an explicitly-programmed access).
  for (int t = 0; t < 6; ++t)
    EXPECT_EQ(sim.segment_data(0)[static_cast<std::size_t>((t * 3 + 11) %
                                                           16)] >= 0,
              true);
}

TEST(Backpressure, ExhaustedRetryBudgetIsTypedNotAViolation) {
  SaturationRig rig(6, 1, 10);
  core::InsertionOptions io;
  io.retry_timeout = 3;
  const auto ins = core::insert_arbitration(rig.g, rig.b, io);

  SimOptions so;
  so.strict = true;
  so.admission_limit = 2;
  so.retry_budget = 2;  // tiny: stalls exhaust it almost immediately
  SystemSimulator sim(ins.graph, rig.b, ins.plan, so);
  const SimResult r = sim.run(rig.tasks);

  EXPECT_FALSE(r.deadlocked);
  for (const TaskId t : rig.tasks)
    EXPECT_GT(r.tasks[t].finish_cycle, 0u);
  // The stalled clients surface kTimedOut and then wait patiently — the
  // run completes with zero protocol violations.
  EXPECT_GT(r.budget_exhausted, 0u);
  EXPECT_GT(r.count(DiagKind::kTimedOut), 0u);
  EXPECT_EQ(r.protocol_violations, 0u);
}

TEST(Backpressure, OverloadNeverDeadlocksTheDegradationSupervisor) {
  // A bank dies mid-overload: the PR 5 supervisor must drain and remap
  // while admission control is actively refusing requests on the
  // survivor.  The drain must complete (bounded by drain_timeout) and
  // every task must finish on the remapped bank.
  SaturationRig rig(6, 2, 10);
  core::InsertionOptions io;
  io.retry_timeout = 4;
  const auto ins = core::insert_arbitration(rig.g, rig.b, io);

  SimOptions so;
  so.strict = false;  // fail-stop bank faults are expected, not fatal
  so.admission_limit = 2;
  so.retry_budget = 8;
  so.degrade.enabled = true;
  so.degrade.strikes = 3;
  so.degrade.strike_window = 64;
  so.degrade.drain_timeout = 32;
  fault::FaultEvent e;
  e.kind = fault::FaultKind::kBankFailure;
  e.cycle = 30;
  e.bank = 1;
  so.faults = {e};

  SystemSimulator sim(ins.graph, rig.b, ins.plan, so);
  const SimResult r = sim.run(rig.tasks);

  EXPECT_FALSE(r.deadlocked)
      << "a full request wire must never wedge the quarantine drain";
  for (const TaskId t : rig.tasks)
    EXPECT_GT(r.tasks[t].finish_cycle, 0u) << "task " << t;
  EXPECT_EQ(r.quarantined, 1u);
  EXPECT_EQ(r.remaps, 1u);
  EXPECT_EQ(r.protocol_violations, 0u);
}

}  // namespace
}  // namespace rcarb::rcsim
