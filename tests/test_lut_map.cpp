#include <gtest/gtest.h>

#include "aig/aig.hpp"
#include "netlist/simulator.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"
#include "synth/lut_map.hpp"

namespace rcarb::synth {
namespace {

/// Builds a random AIG over `nvars` inputs with `nops` random operations,
/// registering `nouts` of the produced literals as outputs.
aig::Aig random_aig(Rng& rng, int nvars, int nops, int nouts) {
  aig::Aig g;
  std::vector<aig::Lit> pool;
  for (int v = 0; v < nvars; ++v)
    pool.push_back(g.add_input("x" + std::to_string(v)));
  pool.push_back(aig::kConstTrue);
  for (int i = 0; i < nops; ++i) {
    aig::Lit a = pool[rng.next_below(pool.size())];
    aig::Lit b = pool[rng.next_below(pool.size())];
    if (rng.chance(1, 3)) a = aig::lit_not(a);
    if (rng.chance(1, 3)) b = aig::lit_not(b);
    pool.push_back(g.land(a, b));
  }
  for (int o = 0; o < nouts; ++o) {
    aig::Lit d = pool[pool.size() - 1 - rng.next_below(pool.size() / 2)];
    if (rng.chance(1, 4)) d = aig::lit_not(d);
    g.add_output("y" + std::to_string(o), d);
  }
  return g;
}

/// Maps the AIG and checks input-output equivalence exhaustively.
void check_mapping_equivalence(const aig::Aig& g, const MapOptions& options) {
  netlist::Netlist nl;
  std::vector<netlist::NetId> input_nets;
  for (std::size_t i = 0; i < g.num_inputs(); ++i)
    input_nets.push_back(nl.add_input(g.input_name(i)));
  MapStats stats;
  const auto out_nets = map_aig(g, options, nl, input_nets, "m_", &stats);
  ASSERT_EQ(out_nets.size(), g.num_outputs());
  netlist::Simulator sim(nl);
  const std::uint64_t rows = 1ull << g.num_inputs();
  for (std::uint64_t p = 0; p < rows; ++p) {
    for (std::size_t i = 0; i < g.num_inputs(); ++i)
      sim.set_input(input_nets[i], (p >> i) & 1);
    sim.settle();
    for (std::size_t o = 0; o < g.num_outputs(); ++o)
      EXPECT_EQ(sim.get(out_nets[o]), g.eval_output(o, p))
          << "output " << o << " pattern " << p;
  }
}

TEST(LutMap, MapsSimpleFunctions) {
  aig::Aig g;
  const auto a = g.add_input("a");
  const auto b = g.add_input("b");
  const auto c = g.add_input("c");
  g.add_output("f", g.lor(g.land(a, b), c));
  check_mapping_equivalence(g, {});
}

TEST(LutMap, SingleLutForFourInputFunction) {
  aig::Aig g;
  std::vector<aig::Lit> ins;
  for (int i = 0; i < 4; ++i) ins.push_back(g.add_input("i" + std::to_string(i)));
  g.add_output("f", g.land_many(ins));
  netlist::Netlist nl;
  std::vector<netlist::NetId> nets;
  for (int i = 0; i < 4; ++i) nets.push_back(nl.add_input("i" + std::to_string(i)));
  MapStats stats;
  map_aig(g, {}, nl, nets, "m_", &stats);
  EXPECT_EQ(stats.luts, 1u) << "a 4-input AND fits one 4-LUT";
  EXPECT_EQ(stats.depth, 1);
}

TEST(LutMap, ConstantAndPassthroughOutputs) {
  aig::Aig g;
  const auto a = g.add_input("a");
  g.add_output("const0", aig::kConstFalse);
  g.add_output("const1", aig::kConstTrue);
  g.add_output("pass", a);
  g.add_output("inv", aig::lit_not(a));
  check_mapping_equivalence(g, {});
}

TEST(LutMap, ComplementedOutputGetsInverter) {
  aig::Aig g;
  const auto a = g.add_input("a");
  const auto b = g.add_input("b");
  const auto f = g.land(a, b);
  g.add_output("nand", aig::lit_not(f));
  check_mapping_equivalence(g, {});
}

struct MapParam {
  std::uint64_t seed;
  int nvars;
  int nops;
  MapObjective objective;
};

class LutMapRandom : public ::testing::TestWithParam<MapParam> {};

TEST_P(LutMapRandom, MappingPreservesFunction) {
  const MapParam param = GetParam();
  Rng rng(param.seed);
  const aig::Aig g = random_aig(rng, param.nvars, param.nops, 3);
  MapOptions options;
  options.objective = param.objective;
  check_mapping_equivalence(g, options);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LutMapRandom,
    ::testing::Values(
        MapParam{1, 4, 10, MapObjective::kDepth},
        MapParam{2, 5, 20, MapObjective::kDepth},
        MapParam{3, 6, 40, MapObjective::kDepth},
        MapParam{4, 7, 60, MapObjective::kDepth},
        MapParam{5, 8, 90, MapObjective::kDepth},
        MapParam{6, 4, 10, MapObjective::kArea},
        MapParam{7, 5, 20, MapObjective::kArea},
        MapParam{8, 6, 40, MapObjective::kArea},
        MapParam{9, 7, 60, MapObjective::kArea},
        MapParam{10, 8, 90, MapObjective::kArea},
        MapParam{11, 9, 120, MapObjective::kDepth},
        MapParam{12, 10, 150, MapObjective::kArea}));

TEST(LutMap, DepthObjectiveNeverDeeperThanAreaObjective) {
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    const aig::Aig g = random_aig(rng, 8, 80, 2);
    netlist::Netlist nl_d, nl_a;
    std::vector<netlist::NetId> in_d, in_a;
    for (std::size_t i = 0; i < g.num_inputs(); ++i) {
      in_d.push_back(nl_d.add_input(g.input_name(i)));
      in_a.push_back(nl_a.add_input(g.input_name(i)));
    }
    MapStats sd, sa;
    MapOptions od, oa;
    od.objective = MapObjective::kDepth;
    oa.objective = MapObjective::kArea;
    map_aig(g, od, nl_d, in_d, "m_", &sd);
    map_aig(g, oa, nl_a, in_a, "m_", &sa);
    EXPECT_LE(sd.depth, sa.depth);
  }
}

TEST(LutMap, RejectsBadOptions) {
  aig::Aig g;
  g.add_input("a");
  netlist::Netlist nl;
  const auto a = nl.add_input("a");
  MapOptions options;
  options.cut_size = 7;
  EXPECT_THROW(map_aig(g, options, nl, {a}, "m_"), rcarb::CheckError);
  EXPECT_THROW(map_aig(g, {}, nl, {}, "m_"), rcarb::CheckError);
}

}  // namespace
}  // namespace rcarb::synth
