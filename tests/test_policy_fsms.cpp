#include <gtest/gtest.h>

#include <set>

#include "core/generator.hpp"
#include "core/policy.hpp"
#include "core/policy_fsms.hpp"
#include "core/rr_fsm.hpp"
#include "netlist/simulator.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace rcarb::core {
namespace {

/// Co-simulates an arbiter FSM (as reference semantics via Fsm::step)
/// against a behavioral Arbiter over random request traces.
void check_fsm_matches_behavior(const synth::Fsm& fsm, Arbiter& behavioral,
                                int n, std::uint64_t seed, int cycles) {
  fsm.validate();
  synth::StateId state = fsm.reset_state();
  Rng rng(seed);
  for (int cyc = 0; cyc < cycles; ++cyc) {
    const std::uint64_t req = rng.next_below(1ull << n);
    const auto r = fsm.step(state, req);
    const int granted = behavioral.step(req);
    ASSERT_EQ(r.outputs, granted < 0 ? 0ull : (1ull << granted))
        << fsm.name() << " cycle " << cyc << " req=" << req;
    state = r.next_state;
  }
}

/// Synthesizes the FSM and co-simulates the mapped netlist too.
void check_netlist_matches_behavior(const synth::Fsm& fsm, Arbiter& behavioral,
                                    int n, synth::Encoding encoding,
                                    std::uint64_t seed, int cycles) {
  const auto g = characterize_fsm(fsm, n, synth::FlowKind::kExpressLike,
                                  encoding);
  netlist::Simulator sim(g.synth.netlist);
  // Resolve port names once — the cycle loop must not hash strings.
  std::vector<netlist::NetId> req_net, grant_net;
  for (int i = 0; i < n; ++i) {
    req_net.push_back(
        *g.synth.netlist.find_net("req" + std::to_string(i)));
    grant_net.push_back(
        *g.synth.netlist.find_net("grant" + std::to_string(i)));
  }
  Rng rng(seed);
  for (int cyc = 0; cyc < cycles; ++cyc) {
    const std::uint64_t req = rng.next_below(1ull << n);
    for (int i = 0; i < n; ++i)
      sim.set_input(req_net[static_cast<std::size_t>(i)], (req >> i) & 1);
    sim.settle();
    int got = -1;
    for (int i = 0; i < n; ++i) {
      if (sim.get(grant_net[static_cast<std::size_t>(i)])) {
        ASSERT_EQ(got, -1) << "double grant from " << fsm.name();
        got = i;
      }
    }
    ASSERT_EQ(got, behavioral.step(req)) << fsm.name() << " cycle " << cyc;
    sim.clock();
  }
  EXPECT_EQ(sim.name_lookups(), 0u);
}

// ------------------------------------------------------------------ priority

class PriorityFsmSweep : public ::testing::TestWithParam<int> {};

TEST_P(PriorityFsmSweep, MatchesBehavioralModel) {
  const int n = GetParam();
  PriorityArbiter behavioral(n);
  check_fsm_matches_behavior(build_priority_fsm(n), behavioral, n,
                             500 + static_cast<std::uint64_t>(n), 2000);
}

TEST_P(PriorityFsmSweep, SynthesizedNetlistMatches) {
  const int n = GetParam();
  PriorityArbiter behavioral(n);
  check_netlist_matches_behavior(build_priority_fsm(n), behavioral, n,
                                 synth::Encoding::kOneHot,
                                 600 + static_cast<std::uint64_t>(n), 1000);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PriorityFsmSweep,
                         ::testing::Values(2, 3, 4, 6, 8));

TEST(PriorityFsm, StateCountIsNPlusOne) {
  EXPECT_EQ(build_priority_fsm(5).num_states(), 6u);
  EXPECT_THROW(build_priority_fsm(1), CheckError);
  EXPECT_THROW(build_priority_fsm(21), CheckError);
}

// ---------------------------------------------------------------------- LFSR

TEST(Lfsr3, HasFullPeriodSeven) {
  std::set<int> seen;
  int s = 1;
  for (int i = 0; i < 7; ++i) {
    seen.insert(s);
    s = lfsr3_next(s);
    EXPECT_GE(s, 1);
    EXPECT_LE(s, 7);
  }
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(s, 1) << "period must be exactly 7";
  EXPECT_THROW((void)lfsr3_next(0), CheckError);
}

class LfsrFsmSweep : public ::testing::TestWithParam<int> {};

TEST_P(LfsrFsmSweep, MatchesBehavioralTwin) {
  const int n = GetParam();
  LfsrRandomArbiter behavioral(n);
  check_fsm_matches_behavior(build_lfsr_random_fsm(n), behavioral, n,
                             700 + static_cast<std::uint64_t>(n), 2000);
}

TEST_P(LfsrFsmSweep, SynthesizedNetlistMatches) {
  const int n = GetParam();
  LfsrRandomArbiter behavioral(n);
  check_netlist_matches_behavior(build_lfsr_random_fsm(n), behavioral, n,
                                 synth::Encoding::kOneHot,
                                 800 + static_cast<std::uint64_t>(n), 800);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LfsrFsmSweep, ::testing::Values(2, 3, 4, 6));

TEST(LfsrFsm, StateCountIsSevenTimesHolders) {
  EXPECT_EQ(build_lfsr_random_fsm(3).num_states(), 7u * 4u);
  EXPECT_THROW(build_lfsr_random_fsm(7), CheckError);
}

TEST(LfsrArbiter, GrantsOnlyRequestersAndHolds) {
  LfsrRandomArbiter arb(4);
  Rng rng(13);
  int holder = -1;
  for (int cyc = 0; cyc < 2000; ++cyc) {
    std::uint64_t req = rng.next_below(16);
    if (holder >= 0) req |= 1ull << holder;
    const int g = arb.step(req);
    if (g >= 0) {
      EXPECT_TRUE((req >> g) & 1);
    }
    if (holder >= 0) {
      EXPECT_EQ(g, holder);
    }
    holder = rng.chance(1, 3) ? -1 : g;
    if (holder < 0 && g >= 0) {
      // release: one step without the bit
      (void)0;
    }
  }
}

// ---------------------------------------------------------------------- FIFO

class FifoFsmSweep : public ::testing::TestWithParam<int> {};

TEST_P(FifoFsmSweep, MatchesBehavioralModel) {
  const int n = GetParam();
  FifoArbiter behavioral(n);
  check_fsm_matches_behavior(build_fifo_fsm(n), behavioral, n,
                             900 + static_cast<std::uint64_t>(n), 3000);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FifoFsmSweep, ::testing::Values(2, 3, 4));

TEST(FifoFsm, SynthesizedNetlistMatchesForSmallN) {
  FifoArbiter behavioral(3);
  check_netlist_matches_behavior(build_fifo_fsm(3), behavioral, 3,
                                 synth::Encoding::kOneHot, 42, 1500);
}

TEST(FifoFsm, CompactEncodingWorksForN4) {
  FifoArbiter behavioral(4);
  check_netlist_matches_behavior(build_fifo_fsm(4), behavioral, 4,
                                 synth::Encoding::kCompact, 43, 400);
}

TEST(FifoFsm, StateSpaceGrowsCombinatorially) {
  const std::size_t s2 = build_fifo_fsm(2).num_states();
  const std::size_t s3 = build_fifo_fsm(3).num_states();
  const std::size_t s4 = build_fifo_fsm(4).num_states();
  EXPECT_LT(s2, s3);
  EXPECT_LT(s3, s4);
  EXPECT_GT(s4, 3 * s3) << "the queue state explosion the paper refers to";
  EXPECT_THROW(build_fifo_fsm(5), CheckError);
}

// ------------------------------------------------------- hardware comparison

TEST(PolicyHardware, RoundRobinIsTheCheapFairOption) {
  const auto flow = synth::FlowKind::kExpressLike;
  const auto enc = synth::Encoding::kOneHot;
  const int n = 4;
  const auto rr = generate_round_robin(n, flow, enc);
  const auto fifo = characterize_fsm(build_fifo_fsm(n), n, flow,
                                     synth::Encoding::kCompact);
  const auto rand = characterize_fsm(build_lfsr_random_fsm(n), n, flow, enc);
  // The Sec. 4 claim, now measurable: every fair alternative costs several
  // times the round-robin area.
  EXPECT_GT(fifo.chars.clbs, 4 * rr.chars.clbs);
  EXPECT_GT(rand.chars.clbs, 4 * rr.chars.clbs);
  EXPECT_GT(rr.chars.fmax_mhz, fifo.chars.fmax_mhz);
}

}  // namespace
}  // namespace rcarb::core
