// Fault campaign: sweeps fault kind x rate x policy x hardening over a
// contention workload and reports survival, recovery actions and corruption
// counts.  The claim under test is the robustness contract: hardened runs
// ride out every injected fault (no deadlock, no uncorrected corruption),
// and unhardened runs may die but always die *attributed* — an illegal FSM
// state, a hung grant or a wait-for-graph deadlock in the diagnostics,
// never a silent hang.  The whole campaign is deterministic from one seed:
// cells run in parallel across $RCARB_JOBS workers, each with a fault plan
// seeded from (kSeed, cell index), and the report is reduced in cell-index
// order, so the output is byte-identical at any job count (RCARB_JOBS=1 is
// the plain serial loop).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/generator.hpp"
#include "core/insertion.hpp"
#include "fault/fault.hpp"
#include "fault/replica_batch.hpp"
#include "netlist/wide_simulator.hpp"
#include "obs/bench_report.hpp"
#include "support/cpu.hpp"
#include "rcsim/system_sim.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace {

using namespace rcarb;
using core::Policy;

/// Four tasks: two hammer one bank, two share one physical channel into a
/// common receiver (which also stores to the bank) — every arbiter class
/// the insertion pass can build is present and busy.
struct Workload {
  tg::TaskGraph g{"campaign"};
  core::Binding binding;

  Workload() {
    g.add_segment("s0", 64, 16);
    g.add_segment("s1", 64, 16);

    // Programs sized so the fault-free run spans most of the campaign
    // horizon — faults must land while the arbiters are busy.
    tg::Program t0;  // bank hammerer, then one channel word
    t0.load_imm(0, 0).load_imm(1, 7);
    t0.loop_begin(90);
    for (int i = 0; i < 4; ++i) t0.store(0, 0, 1, i);
    t0.loop_end();
    t0.send(1, 1).halt();
    tg::Program t1;  // bank hammerer
    t1.load_imm(0, 0).load_imm(1, 9);
    t1.loop_begin(90);
    for (int i = 0; i < 4; ++i) t1.store(1, 0, 1, 4 + i);
    t1.loop_end();
    t1.halt();
    tg::Program t2;  // streams words to t3
    t2.load_imm(1, 100);
    t2.loop_begin(60).send(0, 1).add_imm(1, 1, 1).loop_end();
    t2.halt();
    tg::Program t3;  // consumes both channels, stores into the shared bank
    t3.load_imm(0, 0);
    t3.loop_begin(60).recv(2, 0).store(0, 0, 2, 8).loop_end();
    t3.recv(2, 1).store(0, 0, 2, 9).halt();

    const tg::TaskId a = g.add_task("hammer0", t0, 1);
    g.add_task("hammer1", t1, 1);
    const tg::TaskId c = g.add_task("stream", t2, 1);
    const tg::TaskId d = g.add_task("sink", t3, 1);
    g.add_channel("c_stream", 32, c, d);
    g.add_channel("c_tail", 32, a, d);

    binding.task_to_pe = {0, 1, 2, 3};
    binding.segment_to_bank = {0, 0};
    binding.channel_to_phys = {0, 0};
    binding.num_banks = 1;
    binding.num_phys_channels = 1;
    binding.bank_names = {"BANK"};
    binding.phys_channel_names = {"CH"};
  }
};

struct CellResult {
  bool survived = false;
  bool attributed = false;  // died with a typed cause in the diagnostics
  rcsim::SimResult sim;
};

constexpr std::uint64_t kSeed = 42;
constexpr std::uint64_t kHorizon = 1500;
constexpr int kWatchdog = 32;
constexpr std::uint64_t kWindow = 2000;

CellResult run_cell(const Workload& w, Policy policy, fault::FaultKind kind,
                    double rate, bool harden,
                    const std::vector<fault::FaultEvent>* explicit_faults =
                        nullptr,
                    std::uint64_t plan_seed = kSeed) {
  core::InsertionOptions io;
  io.policy = policy;
  io.retry_timeout = 12;
  const core::InsertionResult ins =
      core::insert_arbitration(w.g, w.binding, io);

  fault::FaultTargets targets;
  for (const core::ArbiterInstance& inst : ins.plan.arbiters) {
    targets.arbiter_ports.push_back(static_cast<int>(inst.ports.size()));
    targets.arbiter_state_bits.push_back(
        2 * static_cast<int>(inst.ports.size()));  // one-hot Fig. 5: Fi + Ci
  }
  targets.num_phys_channels =
      static_cast<int>(w.binding.num_phys_channels);

  fault::FaultPlanOptions fo;
  fo.seed = plan_seed;
  fo.horizon = kHorizon;
  fo.rate = rate;
  fo.stuck_duration = 64;
  fo.kinds = {kind};

  rcsim::SimOptions so;
  so.strict = false;
  // The campaign only counts diagnostic kinds; skip the per-event string
  // formatting across the ~200-cell sweep.
  so.diag_detail = false;
  so.harden = harden;
  so.watchdog_timeout = kWatchdog;
  so.no_progress_window = kWindow;
  so.faults =
      explicit_faults ? *explicit_faults : fault::plan_faults(targets, fo);

  rcsim::SystemSimulator sim(ins.graph, w.binding, ins.plan, so);
  CellResult cell;
  cell.sim = sim.run({0, 1, 2, 3});
  bool all_finished = true;
  for (const rcsim::TaskStats& t : cell.sim.tasks)
    all_finished = all_finished && t.ran && t.finish_cycle > 0;
  cell.survived = !cell.sim.deadlocked && all_finished;
  using rcsim::DiagKind;
  cell.attributed = cell.sim.count(DiagKind::kIllegalFsmState) +
                        cell.sim.count(DiagKind::kHungGrant) +
                        cell.sim.count(DiagKind::kDeadlock) +
                        cell.sim.count(DiagKind::kNoProgress) >
                    0;
  return cell;
}

/// One point of the sweep.  The list is built up front so cells can run on
/// the pool; `targeted_seu` marks the two worst-case cells appended after
/// the random-rate grid.
struct CellSpec {
  Policy policy = Policy::kRoundRobin;
  fault::FaultKind kind = fault::FaultKind::kFsmBitFlip;
  double rate = 0.0;
  bool harden = false;
  bool targeted_seu = false;
};

std::vector<CellSpec> campaign_cells() {
  std::vector<CellSpec> cells;
  for (const Policy policy :
       {Policy::kRoundRobin, Policy::kPriority, Policy::kFifo})
    for (const fault::FaultKind kind : fault::all_fault_kinds())
      for (const double rate : {7e-4, 2e-3, 8e-3})
        for (const bool harden : {false, true})
          cells.push_back({policy, kind, rate, harden, false});
  // Worst-case targeted SEU: clear the hot reset bit (F0) of the bank
  // arbiter at cycle 0 — the register goes zero-hot, the scan logic never
  // fires again, and every client of the bank wedges.  The unhardened
  // round-robin arbiter must die *attributed*; the hardened one reloads the
  // reset code in one clock and the run completes untouched.
  for (const bool harden : {false, true})
    cells.push_back(
        {Policy::kRoundRobin, fault::FaultKind::kFsmBitFlip, 0.0, harden,
         true});
  return cells;
}

void print_campaign(obs::BenchReporter& rep) {
  const Workload w;
  Table table(
      "Fault campaign — kind x rate x policy x hardening (seed 42, horizon "
      "1500, watchdog 32, retry 12)");
  table.set_header({"policy", "fault", "rate", "hardened", "survived",
                    "cycles", "ill/rec", "hung/rel", "corr/fix", "retries",
                    "verdict"});

  const std::vector<CellSpec> cells = campaign_cells();
  const std::vector<fault::FaultEvent> seu = {
      {0, fault::FaultKind::kFsmBitFlip, /*arbiter=*/0, /*port=*/0,
       /*bit=*/0, /*channel=*/0, /*xor_mask=*/0, /*duration=*/1}};

  int hardened_cells = 0, hardened_ok = 0;
  int dead_cells = 0, dead_attributed = 0;
  // Cells are independent simulations: map them across the pool, each with
  // a fault plan derived from (kSeed, cell index), and fold rows/counters
  // in index order so the table and report never depend on the job count.
  ordered_map_reduce<CellResult>(
      cells.size(),
      [&](std::size_t i) {
        const CellSpec& c = cells[i];
        return run_cell(w, c.policy, c.kind, c.rate, c.harden,
                        c.targeted_seu ? &seu : nullptr,
                        derive_seed(kSeed, i));
      },
      [&](std::size_t i, CellResult cell) {
        const CellSpec& c = cells[i];
        const auto& r = cell.sim;
        std::string verdict;
        if (c.harden) {
          ++hardened_cells;
          const bool ok = cell.survived && r.corrupted_words == 0;
          if (ok) ++hardened_ok;
          verdict = ok ? "rides through" : "HARDENED FAILURE";
        } else if (cell.survived) {
          verdict = !c.targeted_seu && r.diagnostics.empty()
                        ? "unaffected"
                        : "limps through";
        } else {
          ++dead_cells;
          if (cell.attributed) ++dead_attributed;
          verdict = cell.attributed ? "dies, attributed" : "SILENT HANG";
        }
        table.add_row(
            {core::to_string(c.policy),
             c.targeted_seu ? "targeted-seu" : fault::to_string(c.kind),
             c.targeted_seu ? "worst" : fmt_fixed(c.rate * 1e3, 1) + "e-3",
             c.harden ? "yes" : "no", cell.survived ? "yes" : "NO",
             std::to_string(r.cycles),
             std::to_string(r.illegal_fsm_states) + "/" +
                 std::to_string(r.fsm_recoveries),
             std::to_string(r.hung_grants) + "/" +
                 std::to_string(r.watchdog_releases),
             std::to_string(r.corrupted_words) + "/" +
                 std::to_string(r.corrected_words),
             std::to_string(r.retries), verdict});
      });

  rep.metric("campaign_cells", static_cast<double>(cells.size()), "cells");
  rep.metric("hardened_cells", hardened_cells, "cells");
  rep.metric("hardened_survived", hardened_ok, "cells");
  rep.metric("unhardened_deaths", dead_cells, "cells");
  rep.metric("deaths_attributed", dead_attributed, "cells");
  rep.note("jobs", "RCARB_JOBS-controlled; output is identical at any job "
                   "count");
  table.print();
  std::printf(
      "hardened: %d/%d cells survived with zero uncorrected corruptions\n"
      "unhardened deaths: %d/%d attributed in the diagnostics (illegal FSM "
      "state,\nhung grant or wait-for-graph deadlock) — no silent hangs\n\n",
      hardened_ok, hardened_cells, dead_attributed, dead_cells);
}

void BM_PlanFaults(benchmark::State& state) {
  fault::FaultTargets targets;
  targets.arbiter_ports = {4, 2};
  targets.arbiter_state_bits = {8, 4};
  targets.num_phys_channels = 1;
  fault::FaultPlanOptions fo;
  fo.rate = static_cast<double>(state.range(0)) * 1e-4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fault::plan_faults(targets, fo));
  }
}
BENCHMARK(BM_PlanFaults)->Arg(5)->Arg(50);

void BM_CampaignCell(benchmark::State& state) {
  const Workload w;
  const bool harden = state.range(0) != 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_cell(w, Policy::kRoundRobin,
                                      fault::FaultKind::kFsmBitFlip, 2e-3,
                                      harden));
  }
}
BENCHMARK(BM_CampaignCell)->Arg(0)->Arg(1);

/// Wide-lane SEU replicas of the campaign's bank arbiter: record the
/// effective request stream the behavioral arbiter saw during one clean
/// run, then replay it against the memo-cached hardened *synthesized*
/// netlist through fault::run_replica_batch — 4096 replicas fanned out as
/// (batches x lanes) over the widest SIMD kernel this machine has, batch
/// workers on $RCARB_JOBS.  Each replica's SEU is staggered across the
/// stream.  This is the netlist-level fault batch the campaign's cycle
/// budget goes into, timed end to end; the per-replica checksums are
/// byte-identical to 4096 scalar runs at any width, tier or job count.
void BM_LaneReplicaCampaign(benchmark::State& state) {
  const Workload w;
  core::InsertionOptions io;
  io.policy = Policy::kRoundRobin;
  io.retry_timeout = 12;
  const core::InsertionResult ins =
      core::insert_arbitration(w.g, w.binding, io);
  rcsim::SimOptions so;
  so.record_request_trace = true;
  rcsim::SystemSimulator sim(ins.graph, w.binding, ins.plan, so);
  const rcsim::SimResult res = sim.run({0, 1, 2, 3});
  std::size_t bank = 0;  // the 3-port arbiter guards the shared bank
  for (std::size_t a = 0; a < ins.plan.arbiters.size(); ++a)
    if (ins.plan.arbiters[a].ports.size() == 3) bank = a;
  const std::vector<std::uint64_t>& trace = res.request_trace[bank];

  const auto& rr3 = core::synthesize_round_robin_cached(
      3, synth::Encoding::kOneHot, /*harden=*/true);
  fault::ReplicaBatchSpec spec;
  spec.netlist = &rr3.netlist;
  for (int i = 0; i < 3; ++i) {
    spec.req.push_back(*rr3.netlist.find_net("req" + std::to_string(i)));
    spec.grant.push_back(*rr3.netlist.find_net("grant" + std::to_string(i)));
  }
  for (std::size_t s = 0;; ++s) {
    const auto net = rr3.netlist.find_net("state" + std::to_string(s));
    if (!net.has_value()) break;
    spec.state.push_back(*net);
  }
  spec.requests = trace;
  constexpr std::size_t kReplicas = 4096;
  for (std::size_t r = 0; r < kReplicas; ++r)
    spec.seu.push_back({static_cast<std::uint32_t>(r * 37 % trace.size()),
                        static_cast<std::uint32_t>(r % spec.state.size())});

  std::uint64_t folded = 0;
  for (auto _ : state) {
    const fault::ReplicaBatchResult batch = fault::run_replica_batch(spec);
    if (folded == 0) {
      folded = batch.folded;
    } else if (folded != batch.folded) {
      state.SkipWithError("replica checksums diverged across iterations");
    }
    benchmark::DoNotOptimize(batch.folded);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kReplicas *
                                                    trace.size()));
  state.SetLabel(std::string("simd=") + to_string(simd_tier()));
}
BENCHMARK(BM_LaneReplicaCampaign);

}  // namespace

int main(int argc, char** argv) {
  rcarb::obs::BenchReporter rep("fault_campaign");
  // Resolved once per process: the SIMD kernel tier the replica batches
  // dispatch to ($RCARB_SIMD can cap it below the machine's).
  rep.note("simd_tier", rcarb::to_string(rcarb::simd_tier()));
  print_campaign(rep);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  const std::string path = rep.write();
  if (path.empty()) {
    std::fputs("bench report write failed\n", stderr);
    return 1;
  }
  std::printf("bench report: %s\n", path.c_str());
  return 0;
}
