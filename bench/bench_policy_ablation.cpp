// Sec. 4 ablation: why round-robin.  The paper examined random, FIFO,
// round-robin and priority-based resolution and found that "with the
// exception of the round-robin technique, all other techniques introduced
// considerable complexity in the required hardware", while round-robin
// also guarantees a grant within N-1 turns.  This bench quantifies the
// behavioral side (fairness, worst-case wait, starvation) on a synthetic
// contention storm, plus the hardware cost of the synthesizable
// round-robin for reference.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>

#include "core/generator.hpp"
#include "core/policy.hpp"
#include "core/policy_fsms.hpp"
#include "core/rr_fsm.hpp"
#include "obs/bench_report.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace {

using namespace rcarb;
using core::Policy;

struct FairnessResult {
  std::uint64_t grants_min = 0;   // fewest grants any task received
  std::uint64_t grants_max = 0;   // most grants any task received
  std::uint64_t worst_wait = 0;   // longest request-to-grant wait (cycles)
  bool starvation = false;        // some task never served
};

/// Contention storm: every task re-requests immediately and holds for
/// `hold` cycles; `cycles` total simulated.
FairnessResult storm(Policy policy, int n, int hold, int cycles,
                     std::uint64_t seed) {
  auto arb = core::make_arbiter(policy, n, seed);
  std::vector<std::uint64_t> grants(static_cast<std::size_t>(n), 0);
  std::vector<std::uint64_t> waiting_since(static_cast<std::size_t>(n), 0);
  FairnessResult result;
  int holder = -1;
  int held = 0;
  for (int cyc = 0; cyc < cycles; ++cyc) {
    std::uint64_t req = (1ull << n) - 1;
    if (holder >= 0 && held >= hold) req &= ~(1ull << holder);
    const int g = arb->step(req);
    if (g >= 0 && g != holder) {
      ++grants[static_cast<std::size_t>(g)];
      result.worst_wait =
          std::max(result.worst_wait,
                   static_cast<std::uint64_t>(cyc) -
                       waiting_since[static_cast<std::size_t>(g)]);
      waiting_since[static_cast<std::size_t>(g)] =
          static_cast<std::uint64_t>(cyc);
      held = 1;
    } else {
      ++held;
    }
    holder = g;
  }
  result.grants_min = *std::min_element(grants.begin(), grants.end());
  result.grants_max = *std::max_element(grants.begin(), grants.end());
  result.starvation = result.grants_min == 0;
  return result;
}

/// Synthesizes the policy's FSM (where tractable) and reports CLBs @ MHz —
/// the paper's Sec. 4: "the required hardware made the arbiter either too
/// slow or too large" for everything but round-robin.
std::string synthesized_cost(Policy policy, int n) {
  const auto flow = synth::FlowKind::kExpressLike;
  const auto onehot = synth::Encoding::kOneHot;
  auto fmt = [](const core::GeneratedArbiter& g) {
    return std::to_string(g.chars.clbs) + " CLBs @ " +
           fmt_fixed(g.chars.fmax_mhz, 1) + " MHz";
  };
  switch (policy) {
    case Policy::kRoundRobin:
      return fmt(core::generate_round_robin_cached(n, flow, onehot));
    case Policy::kPriority:
      return fmt(core::characterize_fsm(core::build_priority_fsm(n), n, flow,
                                        onehot));
    case Policy::kRandom:
      if (n > 6) return "(LFSR machine intractable beyond N=6)";
      return fmt(core::characterize_fsm(core::build_lfsr_random_fsm(n), n,
                                        flow, onehot));
    case Policy::kFifo: {
      if (n > 4) return "(queue state space explodes beyond N=4)";
      const auto enc = n <= 3 ? onehot : synth::Encoding::kCompact;
      return fmt(
          core::characterize_fsm(core::build_fifo_fsm(n), n, flow, enc));
    }
  }
  return "?";
}

void print_ablation(obs::BenchReporter& rep) {
  constexpr int kCycles = 20000;
  constexpr int kHold = 3;

  Table table(
      "Sec. 4 ablation — arbitration policies under a contention storm "
      "(every task always re-requests, 3-cycle bursts, 20000 cycles)");
  table.set_header({"policy", "N", "grants min/max", "worst wait", "starved",
                    "HW cost"});
  struct CellSpec {
    Policy policy;
    int n;
  };
  std::vector<CellSpec> cells;
  for (const Policy policy : {Policy::kRoundRobin, Policy::kFifo,
                              Policy::kPriority, Policy::kRandom})
    for (int n : {4, 6, 10}) cells.push_back({policy, n});
  struct CellOut {
    FairnessResult fair;
    std::string hw;
  };
  // A cell pairs the behavioral storm with the (much heavier) FSM
  // synthesis of its policy; both are self-contained, so the sweep maps
  // cleanly across the pool with rows reduced in sweep order.
  ordered_map_reduce<CellOut>(
      cells.size(),
      [&](std::size_t i) {
        const CellSpec& c = cells[i];
        return CellOut{storm(c.policy, c.n, kHold, kCycles, 7),
                       synthesized_cost(c.policy, c.n)};
      },
      [&](std::size_t i, CellOut out) {
        const CellSpec& c = cells[i];
        const FairnessResult& r = out.fair;
        table.add_row({core::to_string(c.policy), std::to_string(c.n),
                       std::to_string(r.grants_min) + "/" +
                           std::to_string(r.grants_max),
                       std::to_string(r.worst_wait),
                       r.starvation ? "YES" : "no", out.hw});
        if (c.n == 10) {
          const std::string p = core::to_string(c.policy);
          rep.metric(p + "_worst_wait_n10",
                     static_cast<double>(r.worst_wait), "cycles");
          rep.metric(p + "_starved_n10", r.starvation ? 1.0 : 0.0);
        }
      });
  table.print();
  std::puts(
      "behavior: round-robin and FIFO serve everyone with bounded waits;\n"
      "priority starves low-priority tasks outright; random is fair only\n"
      "probabilistically.  hardware: the synthesized FSMs quantify Sec. 4's\n"
      "rejection — the FIFO queue state explodes combinatorially (68 CLBs\n"
      "already at N=3) and the LFSR machine multiplies every state by the\n"
      "generator phase, while round-robin stays a small cyclic scan.\n");
}

void BM_PolicyStep(benchmark::State& state) {
  const auto policy = static_cast<Policy>(state.range(0));
  auto arb = core::make_arbiter(policy, 10, 3);
  Rng rng(11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(arb->step(rng.next_below(1024)));
  }
}
BENCHMARK(BM_PolicyStep)
    ->Arg(static_cast<int>(Policy::kRoundRobin))
    ->Arg(static_cast<int>(Policy::kFifo))
    ->Arg(static_cast<int>(Policy::kPriority))
    ->Arg(static_cast<int>(Policy::kRandom));

}  // namespace

int main(int argc, char** argv) {
  rcarb::obs::BenchReporter rep("policy_ablation");
  print_ablation(rep);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  const std::string path = rep.write();
  if (path.empty()) {
    std::fputs("bench report write failed\n", stderr);
    return 1;
  }
  std::printf("bench report: %s\n", path.c_str());
  return 0;
}
