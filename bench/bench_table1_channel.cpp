// Table 1 reproduction: the shared-channel example.  Logical channels c1
// (Task1 -> Task2) and c4 (Task4 -> Task3) merge onto one physical channel
// c1_4.  Task1 assigns c1 := 10 at step 1; Task4 assigns c4 := 102 at step
// 2; Task2 consumes c1 at step 3.  With the paper's receiver-side
// registers the value 10 "remains indefinitely for Task 2 to consume
// regardless of when Task 4 writes"; the naive alternative (one register
// on the physical channel) silently hands Task2 the value 102.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/insertion.hpp"
#include "obs/bench_report.hpp"
#include "rcsim/system_sim.hpp"
#include "support/table.hpp"

namespace {

using namespace rcarb;

struct Scenario {
  tg::TaskGraph graph{"table1"};
  core::Binding binding;
  tg::SegmentId out = 0;
  std::vector<tg::TaskId> tasks;
};

Scenario build_scenario() {
  Scenario s;
  tg::Program t1;  // step 1: c1 := 10
  t1.load_imm(0, 10).send(0, 0).halt();
  tg::Program t4;  // step 2: c4 := 102 (one cycle later)
  t4.compute(4).load_imm(0, 102).send(1, 0).halt();
  tg::Program t2;  // step 3: x := c1 (much later)
  t2.compute(12).recv(1, 0).load_imm(0, 0).store(0, 0, 1).halt();
  tg::Program t3;  // consumes c4 eventually
  t3.compute(20).recv(1, 1).load_imm(0, 0).store(0, 0, 1, 1).halt();
  const auto task1 = s.graph.add_task("T1", t1, 10);
  const auto task2 = s.graph.add_task("T2", t2, 10);
  const auto task3 = s.graph.add_task("T3", t3, 10);
  const auto task4 = s.graph.add_task("T4", t4, 10);
  s.graph.add_channel("c1", 16, task1, task2);
  s.graph.add_channel("c4", 16, task4, task3);
  s.out = s.graph.add_segment("out", 64, 8);
  s.tasks = {task1, task2, task3, task4};

  s.binding.task_to_pe = {0, 1, 1, 0};
  s.binding.segment_to_bank = {0};
  s.binding.channel_to_phys = {0, 0};  // both merged onto c1_4
  s.binding.num_banks = 1;
  s.binding.bank_names = {"MEM"};
  s.binding.num_phys_channels = 1;
  s.binding.phys_channel_names = {"c1_4"};
  return s;
}

void print_table1(obs::BenchReporter& rep) {
  Table schedule("Table 1 — shared channel example (c1, c4 merged as c1_4)");
  schedule.set_header({"Time Step", "Task 1", "Task 2", "Task 3", "Task 4"});
  schedule.add_row({"1", "c1 := 10", "...", "...", "..."});
  schedule.add_row({"2", "...", "...", "...", "c4 := 102"});
  schedule.add_row({"3", "...", "x := c1", "...", "..."});
  schedule.print();

  Table results("reproduction — what Task 2 actually reads");
  results.set_header({"channel registers", "T2 reads", "clobbered reads",
                      "channel conflicts", "verdict"});

  {
    Scenario s = build_scenario();
    const auto ins = core::insert_arbitration(s.graph, s.binding, {});
    rcsim::SystemSimulator sim(ins.graph, s.binding, ins.plan);
    const auto r = sim.run(s.tasks);
    results.add_row({"per receiving end (Fig. 3)",
                     std::to_string(sim.segment_data(s.out)[0]),
                     std::to_string(r.clobbered_reads),
                     std::to_string(r.channel_conflicts),
                     sim.segment_data(s.out)[0] == 10 ? "correct" : "WRONG"});
    rep.metric("fig3_t2_read", static_cast<double>(sim.segment_data(s.out)[0]));
    rep.metric("fig3_clobbered_reads", static_cast<double>(r.clobbered_reads));
  }
  {
    Scenario s = build_scenario();
    const auto ins = core::insert_arbitration(s.graph, s.binding, {});
    rcsim::SimOptions options;
    options.naive_shared_channel_register = true;
    options.strict = false;
    rcsim::SystemSimulator sim(ins.graph, s.binding, ins.plan, options);
    const auto r = sim.run(s.tasks);
    results.add_row({"one per physical channel",
                     std::to_string(sim.segment_data(s.out)[0]),
                     std::to_string(r.clobbered_reads),
                     std::to_string(r.channel_conflicts),
                     sim.segment_data(s.out)[0] == 10 ? "correct"
                                                      : "DATA LOSS"});
    rep.metric("naive_t2_read",
               static_cast<double>(sim.segment_data(s.out)[0]));
    rep.metric("naive_clobbered_reads",
               static_cast<double>(r.clobbered_reads));
  }
  results.print();
  std::puts(
      "with registers at each receiving end, T4's later transfer cannot\n"
      "overwrite the value T1 sent to T2 — the paper's Sec. 4.3 argument.\n");
}

void BM_SharedChannelSimulation(benchmark::State& state) {
  Scenario s = build_scenario();
  const auto ins = core::insert_arbitration(s.graph, s.binding, {});
  for (auto _ : state) {
    rcsim::SystemSimulator sim(ins.graph, s.binding, ins.plan);
    auto r = sim.run(s.tasks);
    benchmark::DoNotOptimize(r.cycles);
  }
}
BENCHMARK(BM_SharedChannelSimulation);

void BM_ArbiterInsertionPass(benchmark::State& state) {
  Scenario s = build_scenario();
  for (auto _ : state) {
    auto ins = core::insert_arbitration(s.graph, s.binding, {});
    benchmark::DoNotOptimize(ins.plan.arbiters.size());
  }
}
BENCHMARK(BM_ArbiterInsertionPass);

}  // namespace

int main(int argc, char** argv) {
  rcarb::obs::BenchReporter rep("table1_channel");
  print_table1(rep);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  const std::string path = rep.write();
  if (path.empty()) {
    std::fputs("bench report write failed\n", stderr);
    return 1;
  }
  std::printf("bench report: %s\n", path.c_str());
  return 0;
}
