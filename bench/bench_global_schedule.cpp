// Alternative-to-arbitration baseline (Sec. 2.2): global static scheduling.
// "Global scheduling of the design is feasible but it requires a
// complicated controller model and it prohibits real parallelism in the
// execution when processes contain unpredictable loops and conditionals."
//
// Two tasks with data-dependent trip counts share one memory bank.  A
// global static schedule must lay out every access at compile time, so it
// (a) assumes the worst-case trip count for both tasks and (b) cannot let
// their accesses interleave (a conflict must be impossible for *every*
// input).  Its length is therefore the sum of the worst-case solo runs.
// The arbitrated design simply runs both tasks and resolves the actual
// conflicts as they happen.
#include <benchmark/benchmark.h>

#include <array>
#include <cstdio>

#include "core/insertion.hpp"
#include "obs/bench_report.hpp"
#include "rcsim/system_sim.hpp"
#include "support/table.hpp"

namespace {

using namespace rcarb;

constexpr std::int64_t kWorstTrip = 24;

struct Scenario {
  tg::TaskGraph graph{"globalsched"};
  core::Binding binding;
  tg::SegmentId data = 0;
};

/// Two tasks; task i reads its trip count from data[i] and then performs
/// that many stores into its half of the shared bank.
Scenario build() {
  Scenario s;
  s.data = s.graph.add_segment("DATA", 512, 64);
  for (int i = 0; i < 2; ++i) {
    tg::Program p;
    p.load_imm(0, 0)
        .load(1, static_cast<int>(s.data), 0, i)  // trip count (data!)
        .load_imm(2, 32 * i)                      // write base
        .loop_begin_var(1)
        .store(static_cast<int>(s.data), 2, 1, 8)
        .add_imm(2, 2, 1)
        .loop_end()
        .halt();
    s.graph.add_task("t" + std::to_string(i), p, 10);
  }
  s.binding.task_to_pe = {0, 1};
  s.binding.segment_to_bank = {0};
  s.binding.num_banks = 1;
  s.binding.bank_names = {"MEM"};
  return s;
}

/// Solo run with a given trip count (used for the static-schedule length).
std::uint64_t solo_cycles(std::int64_t trip) {
  Scenario s = build();
  rcsim::SystemSimulator* sim;
  core::ArbitrationPlan empty;
  empty.arbiters_of_resource.assign(1, {});
  rcsim::SystemSimulator solo(s.graph, s.binding, empty);
  sim = &solo;
  sim->write_segment(s.data, {trip, trip});
  return sim->run({0}).cycles;
}

std::uint64_t arbitrated_cycles(std::int64_t trip_a, std::int64_t trip_b) {
  Scenario s = build();
  const auto ins = core::insert_arbitration(s.graph, s.binding, {});
  rcsim::SystemSimulator sim(ins.graph, s.binding, ins.plan);
  sim.write_segment(s.data, {trip_a, trip_b});
  return sim.run({0, 1}).cycles;
}

void print_comparison(obs::BenchReporter& rep) {
  // A global static schedule is fixed at synthesis time: both tasks get
  // their worst-case windows, laid end to end (no interleaving can be
  // proven safe when the trip counts are unknown).
  const std::uint64_t static_len = 2 * solo_cycles(kWorstTrip);

  Table table(
      "global static scheduling vs arbitration — two tasks, one bank, "
      "data-dependent trip counts (worst case 24) [paper Sec. 2.2]");
  table.set_header({"actual trips (a, b)", "static schedule", "arbitrated",
                    "speedup"});
  const std::array<std::pair<std::int64_t, std::int64_t>, 4> cases{
      {{24, 24}, {24, 4}, {4, 4}, {1, 16}}};
  rep.metric("static_schedule_cycles", static_cast<double>(static_len),
             "cycles");
  for (const auto& [a, b] : cases) {
    const std::uint64_t dynamic = arbitrated_cycles(a, b);
    rep.metric("arbitrated_cycles_" + std::to_string(a) + "_" +
                   std::to_string(b),
               static_cast<double>(dynamic), "cycles");
    table.add_row({"(" + std::to_string(a) + ", " + std::to_string(b) + ")",
                   std::to_string(static_len), std::to_string(dynamic),
                   fmt_fixed(static_cast<double>(static_len) /
                                 static_cast<double>(dynamic),
                             1) +
                       "x"});
  }
  table.print();
  std::puts(
      "the static schedule always pays 2x the worst case; the arbitrated\n"
      "design tracks the actual data, overlapping the tasks' non-conflicting\n"
      "work and paying only the Fig. 8 protocol cycles — the paper's\n"
      "argument for arbitration over global scheduling.\n");
}

void BM_ArbitratedRun(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(arbitrated_cycles(24, 4));
}
BENCHMARK(BM_ArbitratedRun);

}  // namespace

int main(int argc, char** argv) {
  rcarb::obs::BenchReporter rep("global_schedule");
  print_comparison(rep);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  const std::string path = rep.write();
  if (path.empty()) {
    std::fputs("bench report write failed\n", stderr);
    return 1;
  }
  std::printf("bench report: %s\n", path.c_str());
  return 0;
}
