// Related-work baseline (Sec. 1.2): Virtual Wires.  "Virtual wires offer a
// way of overcoming pin limitations in FPGAs by statically scheduling data
// transfers so that multiple transfers re-use the same set of pins.  This
// comes at the price of statically scheduling accesses."  This bench puts
// that price next to the paper's arbitration: three producers share one
// physical channel, once with round-robin arbitration and once with static
// TDM slots, under regular and then bursty (data-dependent) traffic.
#include <benchmark/benchmark.h>

#include <array>
#include <cstdio>

#include "core/insertion.hpp"
#include "obs/bench_report.hpp"
#include "rcsim/system_sim.hpp"
#include "support/table.hpp"

namespace {

using namespace rcarb;

constexpr int kProducers = 3;
constexpr int kMessages = 8;

struct Scenario {
  tg::TaskGraph graph{"vwires"};
  core::Binding binding;
  std::vector<tg::TaskId> tasks;
};

/// gaps[i] = compute cycles producer i inserts between sends; counts[i] =
/// how many messages producer i sends.
Scenario build(const std::array<int, kProducers>& gaps,
               const std::array<int, kProducers>& counts) {
  Scenario s;
  for (int i = 0; i < kProducers; ++i) {
    tg::Program producer;
    producer.load_imm(0, 100 * i);
    for (int m = 0; m < counts[static_cast<std::size_t>(i)]; ++m) {
      if (gaps[static_cast<std::size_t>(i)] > 0)
        producer.compute(gaps[static_cast<std::size_t>(i)]);
      producer.add_imm(0, 0, 1).send(i, 0);
    }
    producer.halt();
    tg::Program consumer;
    for (int m = 0; m < counts[static_cast<std::size_t>(i)]; ++m)
      consumer.recv(1, i);
    consumer.halt();
    const auto p =
        s.graph.add_task("prod" + std::to_string(i), producer, 10);
    const auto c =
        s.graph.add_task("cons" + std::to_string(i), consumer, 10);
    s.graph.add_channel("c" + std::to_string(i), 8, p, c);
    s.tasks.push_back(p);
    s.tasks.push_back(c);
  }
  s.binding.task_to_pe.assign(s.graph.num_tasks(), 0);
  for (std::size_t t = 0; t < s.graph.num_tasks(); ++t)
    s.binding.task_to_pe[t] = t % 2 == 0 ? 0 : 1;
  s.binding.segment_to_bank = {};
  s.binding.channel_to_phys.assign(kProducers, 0);  // all merged
  s.binding.num_banks = 0;
  s.binding.num_phys_channels = 1;
  s.binding.phys_channel_names = {"shared"};
  return s;
}

struct Outcome {
  std::uint64_t cycles = 0;
  std::uint64_t wait = 0;
};

Outcome run_arbitrated(const std::array<int, kProducers>& gaps,
                       const std::array<int, kProducers>& counts) {
  Scenario s = build(gaps, counts);
  core::InsertionOptions io;
  io.batch_m = 4;
  const auto ins = core::insert_arbitration(s.graph, s.binding, io);
  rcsim::SystemSimulator sim(ins.graph, s.binding, ins.plan);
  const auto r = sim.run(s.tasks);
  Outcome out{r.cycles, 0};
  for (const auto& t : r.tasks) out.wait += t.grant_wait_cycles;
  return out;
}

Outcome run_tdm(const std::array<int, kProducers>& gaps,
                const std::array<int, kProducers>& counts, int period) {
  Scenario s = build(gaps, counts);
  core::ArbitrationPlan empty;
  empty.arbiters_of_resource.assign(s.binding.num_resources(), {});
  rcsim::SimOptions options;
  options.tdm_slots.assign(kProducers, {0, 0});
  for (int i = 0; i < kProducers; ++i)
    options.tdm_slots[static_cast<std::size_t>(i)] = {i, period};
  rcsim::SystemSimulator sim(s.graph, s.binding, empty, options);
  const auto r = sim.run(s.tasks);
  Outcome out{r.cycles, 0};
  for (const auto& t : r.tasks) out.wait += t.grant_wait_cycles;
  return out;
}

void print_comparison(obs::BenchReporter& rep) {
  Table table(
      "virtual-wires baseline — one shared channel, 3 producers x 8 "
      "transfers [paper Sec. 1.2: static scheduling vs arbitration]");
  table.set_header({"traffic pattern", "scheme", "cycles", "wait cycles"});

  struct Case {
    const char* name;
    std::array<int, kProducers> gaps;
    std::array<int, kProducers> counts;
  };
  const Case cases[] = {
      {"uniform, regular (8 msgs each, gap 2)", {2, 2, 2}, {8, 8, 8}},
      {"uniform, skewed gaps (8 each, gap 0/3/9)", {0, 3, 9}, {8, 8, 8}},
      {"one hot sender (16/1/1 msgs, no gaps)", {0, 0, 0}, {16, 1, 1}},
      {"two quiet peers (12/2/2, gap 0/9/9)", {0, 9, 9}, {12, 2, 2}},
  };
  const char* keys[] = {"uniform", "skewed", "hot_sender", "quiet_peers"};
  for (std::size_t i = 0; i < std::size(cases); ++i) {
    const Case& c = cases[i];
    const Outcome arb = run_arbitrated(c.gaps, c.counts);
    const Outcome tdm = run_tdm(c.gaps, c.counts, kProducers + 1);
    table.add_row({c.name, "round-robin arbiter",
                   std::to_string(arb.cycles), std::to_string(arb.wait)});
    table.add_row({c.name, "static TDM slots", std::to_string(tdm.cycles),
                   std::to_string(tdm.wait)});
    rep.metric(std::string(keys[i]) + "_arbitrated_cycles",
               static_cast<double>(arb.cycles), "cycles");
    rep.metric(std::string(keys[i]) + "_tdm_cycles",
               static_cast<double>(tdm.cycles), "cycles");
  }
  table.print();
  std::puts(
      "the trade runs both ways, which is the honest version of Sec. 1.2:\n"
      "when every sender is equally loaded and regular, the static slots\n"
      "are free of protocol overhead and win; the moment the load is\n"
      "asymmetric or data-dependent, the fixed slots idle the wires while\n"
      "the hot sender waits, and the arbiter's dynamic grants win despite\n"
      "the +2-cycle protocol.  Virtual wires also require the global\n"
      "schedule the paper set out to avoid.\n");
}

void BM_Arbitrated(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(run_arbitrated({0, 3, 9}, {8, 8, 8}).cycles);
}
BENCHMARK(BM_Arbitrated);

void BM_Tdm(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(
        run_tdm({0, 3, 9}, {8, 8, 8}, kProducers + 1).cycles);
}
BENCHMARK(BM_Tdm);

}  // namespace

int main(int argc, char** argv) {
  rcarb::obs::BenchReporter rep("virtual_wires");
  print_comparison(rep);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  const std::string path = rep.write();
  if (path.empty()) {
    std::fputs("bench report write failed\n", stderr);
    return 1;
  }
  std::printf("bench report: %s\n", path.c_str());
  return 0;
}
