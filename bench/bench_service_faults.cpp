// Fault-tolerant service bench: live fault injection under 1.5x load.
//
// The robustness claim under test: with self-checking arbiters and the
// degrade supervisor, the open-loop service *keeps serving* through
// arbiter latch-ups, SEU storms and resource failures — goodput retention
// stays >= 0.80 of the fault-free baseline and every quarantine drains and
// fails over without losing a request — while the unprotected service
// (plain arbiters, no supervision) collapses below 0.50 retention when
// permanent faults land, because routing keeps feeding resources whose
// frozen arbiters will never grant again.
//
// Grid: {admit-shed, tail-drop} x {none, dmr, tmr} x {fault-free, seu-lo,
// seu-hi, latchup, resource-fail}.  Every cell reports goodput retention
// (vs the same policy+mode fault-free cell), availability, MTTR and p99;
// the latch-up scenario places its three permanent events in the first
// half of the measured window (stratified by fault::plan_service_faults)
// so the unprotected baseline pays for the dead resources across most of
// the measurement.
//
// Cells run in parallel across $RCARB_JOBS workers; every cell's
// randomness derives from derive_seed(master, cell_index) and the report
// is reduced in cell-index order, so BENCH_service_faults.json is
// byte-identical at any job count (CI diffs RCARB_JOBS=1 against 4).
// RCARB_SERVICE_SMOKE=1 shrinks the windows for CI.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "degrade/degrade.hpp"
#include "fault/service_faults.hpp"
#include "obs/bench_report.hpp"
#include "service/service.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace {

using namespace rcarb;
using service::OverloadPolicy;
using service::ServiceOptions;
using service::ServiceStats;

constexpr std::uint64_t kMasterSeed = 0x5eacfa17ull;

bool smoke_mode() {
  const char* env = std::getenv("RCARB_SERVICE_SMOKE");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

enum class Mode { kNone, kDmr, kTmr };
enum class Scenario { kFaultFree, kSeuLo, kSeuHi, kLatchup, kResourceFail };

const char* to_string(Mode m) {
  switch (m) {
    case Mode::kNone: return "none";
    case Mode::kDmr: return "dmr";
    case Mode::kTmr: return "tmr";
  }
  return "?";
}

const char* to_string(Scenario s) {
  switch (s) {
    case Scenario::kFaultFree: return "fault_free";
    case Scenario::kSeuLo: return "seu_lo";
    case Scenario::kSeuHi: return "seu_hi";
    case Scenario::kLatchup: return "latchup";
    case Scenario::kResourceFail: return "resource_fail";
  }
  return "?";
}

core::CheckMode check_mode(Mode m) {
  switch (m) {
    case Mode::kNone: return core::CheckMode::kNone;
    case Mode::kDmr: return core::CheckMode::kDuplicate;
    case Mode::kTmr: return core::CheckMode::kTmr;
  }
  return core::CheckMode::kNone;
}

int copies_of(Mode m) { return m == Mode::kNone ? 1 : m == Mode::kDmr ? 2 : 3; }

/// 4 resources x 8 flat-arbitrated ports, 6-cycle service — the
/// bench_service_load baseline, with the fault-tolerance switches layered
/// per mode.
ServiceOptions base_options() {
  ServiceOptions o;
  if (smoke_mode()) {
    o.warmup_cycles = 3'000;
    o.measure_cycles = 6'000;
  }
  return o;
}

std::vector<fault::FaultEvent> plan_for(Scenario sc, const ServiceOptions& o,
                                        int copies) {
  if (sc == Scenario::kFaultFree) return {};
  fault::ServiceFaultPlanOptions p;
  p.seed = derive_seed(kMasterSeed, 9000 + static_cast<std::uint64_t>(sc));
  p.inject_after = o.warmup_cycles;
  switch (sc) {
    case Scenario::kSeuLo:
    case Scenario::kSeuHi:
      // Transient upsets across the whole measured window.
      p.horizon = o.warmup_cycles + o.measure_cycles;
      p.rate = sc == Scenario::kSeuLo ? 1e-4 : 1e-3;
      p.kinds = {fault::FaultKind::kFsmBitFlip};
      break;
    case Scenario::kLatchup:
      // Three permanent latch-ups, stratified across the first *half* of
      // the measured window (horizon = warmup + measure/2), so most of
      // the measurement runs with dead arbiters unless somebody repairs.
      p.horizon = o.warmup_cycles + o.measure_cycles / 2;
      p.rate = 3.0 / static_cast<double>(p.horizon - p.inject_after);
      p.kinds = {fault::FaultKind::kArbiterLatchup};
      break;
    case Scenario::kResourceFail:
      p.horizon = o.warmup_cycles + o.measure_cycles / 2;
      p.rate = 1.0 / static_cast<double>(p.horizon - p.inject_after);
      p.kinds = {fault::FaultKind::kBankFailure};
      break;
    case Scenario::kFaultFree:
      break;
  }
  return fault::plan_service_faults(o.resources, o.ports, copies, p);
}

struct CellSpec {
  OverloadPolicy policy;
  Mode mode;
  Scenario scenario;
};

std::string cell_tag(const CellSpec& c) {
  std::string tag = to_string(c.policy);
  for (char& ch : tag)
    if (ch == '-') ch = '_';
  return tag + "_" + to_string(c.mode) + "_" + to_string(c.scenario);
}

ServiceStats run_cell(const CellSpec& spec, double capacity,
                      std::uint64_t cell_index) {
  ServiceOptions o = base_options();
  o.policy = spec.policy;
  o.arrivals.rate = 1.5 * capacity;
  o.self_check = check_mode(spec.mode);
  o.degrade.enabled = spec.mode != Mode::kNone;
  o.faults = plan_for(spec.scenario, o, copies_of(spec.mode));
  o.seed = derive_seed(kMasterSeed, cell_index);
  return service::run_service(o);
}

bool conserved(const ServiceStats& s) {
  return s.in_flight_at_start + s.offered ==
         s.completed + s.timed_out + s.budget_exhausted + s.in_flight_at_end;
}

/// Prints the grid and records metrics; returns true when every headline
/// bar and invariant held.
bool print_grid(obs::BenchReporter& rep) {
  const double capacity = service::measure_capacity(base_options());

  // The supervisor prices reconfiguration off the process-wide synthesis
  // memo; warm it serially for every mode so the parallel cells below
  // never race it.
  {
    degrade::DegradeOptions d;
    const ServiceOptions o = base_options();
    for (const Mode m : {Mode::kNone, Mode::kDmr, Mode::kTmr})
      (void)degrade::arbiter_reconfig_cycles(d, o.ports, check_mode(m));
  }

  const std::vector<OverloadPolicy> policies = {OverloadPolicy::kAdmitShed,
                                                OverloadPolicy::kTailDrop};
  const std::vector<Mode> modes = {Mode::kNone, Mode::kDmr, Mode::kTmr};
  const std::vector<Scenario> scenarios = {
      Scenario::kFaultFree, Scenario::kSeuLo, Scenario::kSeuHi,
      Scenario::kLatchup, Scenario::kResourceFail};

  // Fault-free cells first so the ordered reducer has every retention
  // denominator before the faulted cells of the same policy+mode arrive.
  std::vector<CellSpec> cells;
  for (const OverloadPolicy p : policies)
    for (const Mode m : modes) cells.push_back({p, m, Scenario::kFaultFree});
  for (const OverloadPolicy p : policies)
    for (const Mode m : modes)
      for (const Scenario sc : scenarios)
        if (sc != Scenario::kFaultFree) cells.push_back({p, m, sc});

  Table table("Fault-tolerant service at 1.5x load: goodput retention, "
              "availability and repair by protection mode");
  table.set_header({"policy", "mode", "scenario", "goodput/cyc", "retention",
                    "avail", "mttr", "p99", "err", "resync", "quar", "rest",
                    "retd", "corrupt", "consv"});

  std::vector<std::pair<std::string, double>> ref_goodput;  // policy_mode
  const auto ref_of = [&](const CellSpec& c) {
    const std::string key =
        std::string(to_string(c.policy)) + "_" + to_string(c.mode);
    for (const auto& [k, v] : ref_goodput)
      if (k == key) return v;
    return 0.0;
  };

  bool all_conserved = true;
  bool protected_clean = true;  // no corruption past a DMR/TMR wrapper
  double retention_none_latchup = 1.0;
  double retention_tmr_latchup = 0.0;
  double retention_dmr_latchup = 0.0;

  ordered_map_reduce<ServiceStats>(
      cells.size(),
      [&](std::size_t i) { return run_cell(cells[i], capacity, i); },
      [&](std::size_t i, ServiceStats s) {
        const CellSpec& c = cells[i];
        if (c.scenario == Scenario::kFaultFree)
          ref_goodput.emplace_back(
              std::string(to_string(c.policy)) + "_" + to_string(c.mode),
              s.goodput());
        const double ref = ref_of(c);
        const double retention = ref == 0.0 ? 0.0 : s.goodput() / ref;
        const bool ok = conserved(s);
        all_conserved = all_conserved && ok;
        if (c.mode != Mode::kNone && (s.corrupted != 0 || s.multi_grants != 0))
          protected_clean = false;
        if (c.policy == OverloadPolicy::kAdmitShed &&
            c.scenario == Scenario::kLatchup) {
          if (c.mode == Mode::kNone) retention_none_latchup = retention;
          if (c.mode == Mode::kDmr) retention_dmr_latchup = retention;
          if (c.mode == Mode::kTmr) retention_tmr_latchup = retention;
        }
        const std::string tag = cell_tag(c);
        rep.metric("goodput_" + tag, s.goodput(), "req/cycle");
        rep.metric("retention_" + tag, retention, "ratio");
        rep.metric("availability_" + tag, s.availability(), "ratio");
        rep.metric("mttr_" + tag, s.mttr_cycles(), "cycles");
        rep.metric("p99_" + tag,
                   static_cast<double>(s.latency.percentile(0.99)), "cycles");
        rep.metric("conservation_" + tag, ok ? 1.0 : 0.0, "bool");
        table.add_row(
            {to_string(c.policy), to_string(c.mode), to_string(c.scenario),
             fmt_fixed(s.goodput(), 4), fmt_fixed(retention, 3),
             fmt_fixed(s.availability(), 3), fmt_fixed(s.mttr_cycles(), 0),
             std::to_string(s.latency.percentile(0.99)),
             std::to_string(s.error_net_trips), std::to_string(s.resyncs),
             std::to_string(s.quarantines), std::to_string(s.restored),
             std::to_string(s.retired), std::to_string(s.corrupted),
             ok ? "ok" : "LOST"});
      });
  table.print();

  rep.metric("capacity", capacity, "req/cycle");
  rep.metric("retention_floor_latchup_tmr", retention_tmr_latchup, "ratio");
  rep.metric("retention_ceiling_latchup_none", retention_none_latchup,
             "ratio");
  rep.metric("conservation_ok", all_conserved ? 1.0 : 0.0, "bool");
  rep.metric("protected_clean", protected_clean ? 1.0 : 0.0, "bool");
  rep.note("smoke", smoke_mode() ? "1" : "0");
  rep.note("jobs", "RCARB_JOBS-controlled; output is identical at any job "
                   "count");

  const bool tmr_ok = retention_tmr_latchup >= 0.80;
  const bool none_ok = retention_none_latchup < 0.50;
  std::printf(
      "capacity %.4f req/cycle\n"
      "latch-up at 1.5x (admit-shed): tmr retention %.3f (%s >=0.80), "
      "dmr %.3f, unprotected %.3f (%s <0.50)\n"
      "conservation %s, protected modes %s\n\n",
      capacity, retention_tmr_latchup, tmr_ok ? "meets" : "MISSES",
      retention_dmr_latchup, retention_none_latchup,
      none_ok ? "meets" : "MISSES",
      all_conserved ? "holds in every cell" : "VIOLATED",
      protected_clean ? "saw zero corrupted completions"
                      : "LEAKED CORRUPTION");
  return tmr_ok && none_ok && all_conserved && protected_clean;
}

void BM_FaultedServiceCell(benchmark::State& state) {
  const Mode mode = state.range(0) == 0   ? Mode::kNone
                    : state.range(0) == 1 ? Mode::kDmr
                                          : Mode::kTmr;
  for (auto _ : state) {
    ServiceOptions o;
    o.warmup_cycles = 1'000;
    o.measure_cycles = 4'000;
    o.arrivals.rate = 1.0;
    o.self_check = check_mode(mode);
    o.degrade.enabled = mode != Mode::kNone;
    o.faults = plan_for(Scenario::kLatchup, o, copies_of(mode));
    benchmark::DoNotOptimize(service::run_service(o));
  }
}
BENCHMARK(BM_FaultedServiceCell)->Arg(0)->Arg(1)->Arg(2);

}  // namespace

int main(int argc, char** argv) {
  rcarb::obs::BenchReporter rep("service_faults");
  const bool ok = print_grid(rep);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  const std::string path = rep.write();
  if (path.empty()) {
    std::fputs("bench report write failed\n", stderr);
    return 1;
  }
  std::printf("bench report: %s\n", path.c_str());
  if (!ok) {
    std::fputs("service fault-tolerance headline MISSED\n", stderr);
    return 1;
  }
  return 0;
}
