// Netlist-simulation throughput: scalar vs bit-parallel 64-lane engine.
//
// The workload is the fault campaign's inner loop: replay one request
// stream against a synthesized round-robin arbiter 64 times, each replica
// with its own SEU (a register bit flipped at a replica-specific cycle).
// The scalar baseline runs the proven one-bit netlist::Simulator 64 times;
// the lane engine packs all 64 replicas into uint64_t words and advances
// them in one pass per cycle (netlist::LaneSimulator), with the
// event-driven settle additionally skipping LUTs whose inputs are quiet.
//
// Reported in BENCH_sim_throughput.json as replica-cycles per second
// (64 replicas x stream length, divided by wall time), per netlist config;
// `speedup_x` is the headline lane-vs-scalar ratio on the campaign-shaped
// hardened arbiter.  Every timed loop resolves net names to NetIds up
// front — the name_lookups() counters are asserted flat across the runs.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "core/generator.hpp"
#include "netlist/lane_simulator.hpp"
#include "netlist/simulator.hpp"
#include "obs/bench_report.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace {

using namespace rcarb;
using netlist::LaneSimulator;
using netlist::Netlist;
using netlist::NetId;
using netlist::SettleMode;
using netlist::Simulator;

constexpr std::uint64_t kSeed = 20260805;
constexpr std::size_t kCycles = 2048;   // stream length per replica
constexpr std::size_t kLanes = LaneSimulator::kLanes;

/// Resolved ports of an arbiter netlist plus the shared fault batch: one
/// request stream and one SEU (cycle, state bit) per replica.
struct ReplicaBatch {
  const Netlist* nl = nullptr;
  std::vector<NetId> req, grant, state;
  std::vector<std::uint64_t> requests;              // per cycle, low n bits
  std::vector<std::pair<std::uint32_t, std::uint32_t>> seu;  // per lane
  std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>>
      seu_by_cycle;  // [cycle] -> (lane, state bit)
};

ReplicaBatch make_batch(const Netlist& nl, int n, std::uint64_t seed) {
  ReplicaBatch b;
  b.nl = &nl;
  for (int i = 0; i < n; ++i) {
    b.req.push_back(*nl.find_net("req" + std::to_string(i)));
    b.grant.push_back(*nl.find_net("grant" + std::to_string(i)));
  }
  for (std::size_t s = 0;; ++s) {
    const auto net = nl.find_net("state" + std::to_string(s));
    if (!net.has_value()) break;
    b.state.push_back(*net);
  }
  Rng rng(seed);
  b.requests.reserve(kCycles);
  for (std::size_t c = 0; c < kCycles; ++c)
    b.requests.push_back(rng.next_below(std::uint64_t{1} << n));
  b.seu_by_cycle.resize(kCycles);
  for (std::size_t lane = 0; lane < kLanes; ++lane) {
    const auto cycle = static_cast<std::uint32_t>(rng.next_below(kCycles));
    const auto bit =
        static_cast<std::uint32_t>(rng.next_below(b.state.size()));
    b.seu.push_back({cycle, bit});
    b.seu_by_cycle[cycle].push_back(
        {static_cast<std::uint32_t>(lane), bit});
  }
  return b;
}

/// One replica on the scalar simulator; returns a grant-stream checksum.
std::uint64_t run_scalar_replica(Simulator& sim, const ReplicaBatch& b,
                                 std::size_t lane) {
  sim.reset();
  std::uint64_t checksum = 0;
  for (std::size_t c = 0; c < kCycles; ++c) {
    const std::uint64_t req = b.requests[c];
    for (std::size_t i = 0; i < b.req.size(); ++i)
      sim.set_input(b.req[i], (req >> i) & 1);
    sim.settle();
    for (std::size_t i = 0; i < b.grant.size(); ++i)
      checksum = checksum * 31 + (sim.get(b.grant[i]) ? i + 1 : 0);
    if (b.seu[lane].first == c) {
      const NetId net = b.state[b.seu[lane].second];
      sim.poke_register(net, !sim.get(net));
    }
    sim.clock();
  }
  return checksum;
}

/// All 64 replicas on the lane simulator; returns the same checksum folded
/// over lanes in lane order (so it can be compared against 64 scalar runs).
std::uint64_t run_lane_batch(LaneSimulator& sim, const ReplicaBatch& b) {
  sim.reset();
  std::vector<std::uint64_t> grant_words(b.grant.size() * kCycles);
  for (std::size_t c = 0; c < kCycles; ++c) {
    const std::uint64_t req = b.requests[c];
    for (std::size_t i = 0; i < b.req.size(); ++i)
      sim.set_input(b.req[i], ((req >> i) & 1) ? ~std::uint64_t{0} : 0);
    sim.settle();
    for (std::size_t i = 0; i < b.grant.size(); ++i)
      grant_words[c * b.grant.size() + i] = sim.get(b.grant[i]);
    for (const auto& [lane, bit] : b.seu_by_cycle[c]) {
      const NetId net = b.state[bit];
      sim.poke_register_lane(net, lane, !sim.get_lane(net, lane));
    }
    sim.clock();
  }
  // Fold per lane in the scalar replica's order.
  std::uint64_t folded = 0;
  for (std::size_t lane = 0; lane < kLanes; ++lane) {
    std::uint64_t checksum = 0;
    for (std::size_t c = 0; c < kCycles; ++c)
      for (std::size_t i = 0; i < b.grant.size(); ++i)
        checksum = checksum * 31 +
                   (((grant_words[c * b.grant.size() + i] >> lane) & 1)
                        ? i + 1
                        : 0);
    folded = folded * 1099511628211ull + checksum;
  }
  return folded;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct ConfigResult {
  double scalar_cps = 0.0;
  double lane_event_cps = 0.0;
  double lane_full_cps = 0.0;
  double event_eval_fraction = 0.0;  // event-driven LUT evals / full evals
  bool checksums_match = false;
};

ConfigResult measure_config(const Netlist& nl, int n, std::uint64_t seed) {
  const ReplicaBatch b = make_batch(nl, n, seed);
  const double replica_cycles = static_cast<double>(kLanes * kCycles);

  Simulator scalar(nl);
  std::uint64_t scalar_folded = 0;
  const auto t_scalar = std::chrono::steady_clock::now();
  for (std::size_t lane = 0; lane < kLanes; ++lane)
    scalar_folded = scalar_folded * 1099511628211ull +
                    run_scalar_replica(scalar, b, lane);
  const double scalar_s = seconds_since(t_scalar);

  LaneSimulator lane_event(nl, SettleMode::kEventDriven);
  const std::uint64_t evals_before = lane_event.luts_evaluated();
  const auto t_event = std::chrono::steady_clock::now();
  const std::uint64_t event_folded = run_lane_batch(lane_event, b);
  const double event_s = seconds_since(t_event);
  const std::uint64_t event_evals =
      lane_event.luts_evaluated() - evals_before;

  LaneSimulator lane_full(nl, SettleMode::kFullTopo);
  const std::uint64_t full_evals_before = lane_full.luts_evaluated();
  const auto t_full = std::chrono::steady_clock::now();
  const std::uint64_t full_folded = run_lane_batch(lane_full, b);
  const double full_s = seconds_since(t_full);
  const std::uint64_t full_evals =
      lane_full.luts_evaluated() - full_evals_before;

  // All three engines must agree bit for bit — a throughput number from a
  // diverging simulator would be meaningless.
  const bool match =
      scalar_folded == event_folded && event_folded == full_folded;

  // The timed loops resolved every name up front; any hidden per-cycle
  // string hashing would show up here.
  if (scalar.name_lookups() != 0 || lane_event.name_lookups() != 0 ||
      lane_full.name_lookups() != 0) {
    std::fputs("unexpected name lookups inside the timed loops\n", stderr);
    std::exit(1);
  }

  ConfigResult r;
  r.scalar_cps = replica_cycles / scalar_s;
  r.lane_event_cps = replica_cycles / event_s;
  r.lane_full_cps = replica_cycles / full_s;
  r.event_eval_fraction = full_evals == 0
                              ? 0.0
                              : static_cast<double>(event_evals) /
                                    static_cast<double>(full_evals);
  r.checksums_match = match;
  return r;
}

struct Config {
  std::string name;
  const Netlist* nl;
  int n;
};

int report_throughput(obs::BenchReporter& rep) {
  // Campaign-shaped hardened arbiter (the fault campaign's bank arbiter is
  // a hardened 3-port round-robin) plus two structural sizes for scale.
  const auto& hardened =
      core::synthesize_round_robin_cached(3, synth::Encoding::kOneHot,
                                          /*harden=*/true);
  const auto& n8 = core::generate_round_robin_cached(
      8, synth::FlowKind::kExpressLike, synth::Encoding::kOneHot);
  const auto& n16 = core::generate_round_robin_cached(
      16, synth::FlowKind::kExpressLike, synth::Encoding::kOneHot);
  const std::vector<Config> configs = {
      {"n3_hardened", &hardened.netlist, 3},
      {"n8_structural", &n8.synth.netlist, 8},
      {"n16_structural", &n16.synth.netlist, 16},
  };

  Table table(
      "simulation throughput — 64 SEU replicas x " +
      std::to_string(kCycles) + " cycles (replica-cycles/sec)");
  table.set_header({"netlist", "LUTs", "scalar", "lane event", "lane full",
                    "speedup", "event evals"});

  bool all_match = true;
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const Config& cfg = configs[i];
    const ConfigResult r =
        measure_config(*cfg.nl, cfg.n, derive_seed(kSeed, i));
    all_match = all_match && r.checksums_match;
    const double speedup = r.lane_event_cps / r.scalar_cps;
    table.add_row({cfg.name, std::to_string(cfg.nl->num_luts()),
                   fmt_fixed(r.scalar_cps / 1e6, 2) + "M",
                   fmt_fixed(r.lane_event_cps / 1e6, 2) + "M",
                   fmt_fixed(r.lane_full_cps / 1e6, 2) + "M",
                   fmt_fixed(speedup, 1) + "x",
                   fmt_fixed(r.event_eval_fraction * 100.0, 1) + "%"});
    if (cfg.name == "n3_hardened") {
      // The headline acceptance numbers: scalar vs lane on the
      // campaign-shaped 64-replica fault batch.
      rep.metric("scalar_cycles_per_sec", r.scalar_cps, "cycles/s");
      rep.metric("lane_cycles_per_sec", r.lane_event_cps, "cycles/s");
      rep.metric("speedup_x", speedup, "x");
      rep.metric("event_eval_fraction", r.event_eval_fraction, "ratio");
    } else {
      rep.metric(cfg.name + "_speedup_x", speedup, "x");
    }
  }
  rep.note("batch", "64 lanes x " + std::to_string(kCycles) +
                        " cycles, one register-bit SEU per lane");
  table.print();
  if (!all_match) {
    std::fputs("scalar/lane/event checksums diverged\n", stderr);
    return 1;
  }
  std::puts(
      "one lane pass advances 64 replicas: the per-cycle cost is one LUT\n"
      "mux-tree fold per dirty LUT instead of 64 scalar topo passes.\n");
  return 0;
}

void BM_ScalarReplicaBatch(benchmark::State& state) {
  const auto& g = core::synthesize_round_robin_cached(
      static_cast<int>(state.range(0)), synth::Encoding::kOneHot, true);
  const ReplicaBatch b =
      make_batch(g.netlist, static_cast<int>(state.range(0)), kSeed);
  Simulator sim(g.netlist);
  for (auto _ : state) {
    std::uint64_t folded = 0;
    for (std::size_t lane = 0; lane < kLanes; ++lane)
      folded = folded * 1099511628211ull + run_scalar_replica(sim, b, lane);
    benchmark::DoNotOptimize(folded);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kLanes * kCycles));
}
BENCHMARK(BM_ScalarReplicaBatch)->Arg(3);

void BM_LaneReplicaBatch(benchmark::State& state) {
  const auto& g = core::synthesize_round_robin_cached(
      static_cast<int>(state.range(0)), synth::Encoding::kOneHot, true);
  const ReplicaBatch b =
      make_batch(g.netlist, static_cast<int>(state.range(0)), kSeed);
  const auto mode = state.range(1) == 0 ? SettleMode::kEventDriven
                                        : SettleMode::kFullTopo;
  LaneSimulator sim(g.netlist, mode);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_lane_batch(sim, b));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kLanes * kCycles));
}
BENCHMARK(BM_LaneReplicaBatch)->Args({3, 0})->Args({3, 1});

}  // namespace

int main(int argc, char** argv) {
  rcarb::obs::BenchReporter rep("sim_throughput");
  const int rc = report_throughput(rep);
  if (rc != 0) return rc;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  const std::string path = rep.write();
  if (path.empty()) {
    std::fputs("bench report write failed\n", stderr);
    return 1;
  }
  std::printf("bench report: %s\n", path.c_str());
  return 0;
}
