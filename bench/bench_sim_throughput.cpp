// Netlist-simulation throughput: scalar vs bit-parallel lane engines at
// 64, 256 and 512 lanes.
//
// The workload is the fault campaign's inner loop: replay one request
// stream against a synthesized round-robin arbiter R times, each replica
// with its own SEU (a register bit flipped at a replica-specific cycle).
// The scalar baseline runs the proven one-bit netlist::Simulator once per
// replica; the lane engines pack replicas into 64-bit words — one word
// (netlist::WideLaneSimulator's portable kernel), four words (AVX2) or
// eight words (AVX-512), with the SIMD kernel chosen at runtime
// (support/cpu.hpp, $RCARB_SIMD caps it) — and advance all lanes in one
// pass per cycle.  Event-driven settle additionally skips LUTs whose
// inputs are quiet; the grid sweeps both settle modes at every width.
// The `batched` cell fans a 4096-replica campaign out as (batches x
// lanes) across $RCARB_JOBS workers (fault::run_replica_batch).
//
// Reported in BENCH_sim_throughput.json as lane-cycles per second
// (replicas x stream length, divided by kernel wall time), per netlist
// config, plus LUT-evals/sec at the widest width.  `w256_over_w64_x` /
// `w512_over_w64_x` are the headline wide-vs-64-lane ratios on the
// campaign-shaped hardened arbiter, `batched_over_w64_x` the threaded
// whole-campaign ratio.  Every grid cell's per-replica checksums are
// cross-checked: scalar vs every width, event vs full settle, and the
// folded value lands in the `checksum_<config>` notes — byte-identical
// across $RCARB_SIMD tiers and $RCARB_JOBS counts, which CI pins by
// diffing the notes across forced-tier reruns.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "core/generator.hpp"
#include "fault/replica_batch.hpp"
#include "netlist/simulator.hpp"
#include "netlist/wide_simulator.hpp"
#include "obs/bench_report.hpp"
#include "support/cpu.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace {

using namespace rcarb;
using netlist::Netlist;
using netlist::NetId;
using netlist::SettleMode;
using netlist::Simulator;
using netlist::WideLaneSimulator;

constexpr std::uint64_t kSeed = 20260805;
constexpr std::size_t kCycles = 2048;      // stream length per replica
constexpr std::size_t kReplicas = 512;     // grid cells: one widest batch
constexpr std::size_t kScalarReplicas = 64;  // scalar baseline prefix
constexpr std::size_t kBatchedReplicas = 4096;  // threaded campaign cell

/// The shared fault batch: request stream plus one SEU per replica,
/// resolved against one arbiter netlist.
fault::ReplicaBatchSpec make_spec(const Netlist& nl, int n,
                                  std::uint64_t seed, std::size_t replicas) {
  fault::ReplicaBatchSpec spec;
  spec.netlist = &nl;
  for (int i = 0; i < n; ++i) {
    spec.req.push_back(*nl.find_net("req" + std::to_string(i)));
    spec.grant.push_back(*nl.find_net("grant" + std::to_string(i)));
  }
  for (std::size_t s = 0;; ++s) {
    const auto net = nl.find_net("state" + std::to_string(s));
    if (!net.has_value()) break;
    spec.state.push_back(*net);
  }
  Rng rng(seed);
  spec.requests.reserve(kCycles);
  for (std::size_t c = 0; c < kCycles; ++c)
    spec.requests.push_back(rng.next_below(std::uint64_t{1} << n));
  for (std::size_t r = 0; r < replicas; ++r)
    spec.seu.push_back(
        {static_cast<std::uint32_t>(rng.next_below(kCycles)),
         static_cast<std::uint32_t>(rng.next_below(spec.state.size()))});
  return spec;
}

/// One replica on the scalar simulator; returns a grant-stream checksum.
std::uint64_t run_scalar_replica(Simulator& sim,
                                 const fault::ReplicaBatchSpec& spec,
                                 std::size_t replica) {
  sim.reset();
  std::uint64_t checksum = 0;
  for (std::size_t c = 0; c < kCycles; ++c) {
    const std::uint64_t req = spec.requests[c];
    for (std::size_t i = 0; i < spec.req.size(); ++i)
      sim.set_input(spec.req[i], (req >> i) & 1);
    sim.settle();
    for (std::size_t i = 0; i < spec.grant.size(); ++i)
      checksum = checksum * 31 + (sim.get(spec.grant[i]) ? i + 1 : 0);
    if (spec.seu[replica].cycle == c) {
      const NetId net = spec.state[spec.seu[replica].state_bit];
      sim.poke_register(net, !sim.get(net));
    }
    sim.clock();
  }
  return checksum;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// One (width, settle mode) grid cell over the shared 512-replica batch.
struct Cell {
  double cps = 0.0;            // lane-cycles per second
  double evals_per_sec = 0.0;  // LUT evaluations per second
  std::uint64_t luts_evaluated = 0;
  std::vector<std::uint64_t> checksums;
  std::uint64_t folded = 0;
  SimdTier tier = SimdTier::kScalar;
};

Cell run_cell(const fault::ReplicaBatchSpec& spec, std::size_t lanes,
              SettleMode mode) {
  fault::ReplicaBatchOptions opt;
  opt.lanes = lanes;
  opt.mode = mode;
  opt.jobs = 1;  // grid cells time the kernel, not the worker pool
  const fault::ReplicaBatchResult r = fault::run_replica_batch(spec, opt);
  Cell cell;
  cell.cps = static_cast<double>(spec.seu.size() * kCycles) /
             r.kernel_seconds;
  cell.evals_per_sec =
      static_cast<double>(r.luts_evaluated) / r.kernel_seconds;
  cell.luts_evaluated = r.luts_evaluated;
  cell.checksums = r.checksums;
  cell.folded = r.folded;
  cell.tier = r.kernel_tier;
  return cell;
}

struct ConfigResult {
  double scalar_cps = 0.0;
  Cell event[3];  // widths 64 / 256 / 512, event-driven settle
  Cell full[3];   // widths 64 / 256 / 512, full-topo settle
  double batched_cps = 0.0;        // 4096 replicas, widest width, RCARB_JOBS
  double event_eval_fraction = 0.0;  // event evals / full evals at 512 lanes
  std::uint64_t folded = 0;          // the shared 512-replica checksum fold
  bool checksums_match = false;
};

constexpr std::size_t kWidths[3] = {64, 256, 512};

ConfigResult measure_config(const Netlist& nl, int n, std::uint64_t seed) {
  const fault::ReplicaBatchSpec spec = make_spec(nl, n, seed, kReplicas);

  // Scalar baseline: the first kScalarReplicas replicas, one at a time.
  Simulator scalar(nl);
  std::vector<std::uint64_t> scalar_checksums(kScalarReplicas);
  const auto t_scalar = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < kScalarReplicas; ++r)
    scalar_checksums[r] = run_scalar_replica(scalar, spec, r);
  const double scalar_s = seconds_since(t_scalar);

  ConfigResult res;
  res.scalar_cps =
      static_cast<double>(kScalarReplicas * kCycles) / scalar_s;

  bool match = true;
  for (std::size_t w = 0; w < 3; ++w) {
    res.event[w] = run_cell(spec, kWidths[w], SettleMode::kEventDriven);
    res.full[w] = run_cell(spec, kWidths[w], SettleMode::kFullTopo);
    // Event and full settle must agree replica for replica, and the scalar
    // baseline must match the leading replicas of every width — a
    // throughput number from a diverging simulator would be meaningless.
    match = match && res.event[w].checksums == res.full[w].checksums;
    for (std::size_t r = 0; r < kScalarReplicas; ++r)
      match = match && res.event[w].checksums[r] == scalar_checksums[r];
    match = match && res.event[w].folded == res.event[0].folded;
  }
  res.folded = res.event[0].folded;
  res.event_eval_fraction =
      res.full[2].luts_evaluated == 0
          ? 0.0
          : static_cast<double>(res.event[2].luts_evaluated) /
                static_cast<double>(res.full[2].luts_evaluated);

  // The threaded campaign cell: 4096 replicas at the widest width, batch
  // workers on $RCARB_JOBS.  Same stream, fresh SEU draw per replica.
  const fault::ReplicaBatchSpec campaign =
      make_spec(nl, n, seed, kBatchedReplicas);
  fault::ReplicaBatchOptions opt;
  const fault::ReplicaBatchResult batched =
      fault::run_replica_batch(campaign, opt);
  res.batched_cps = static_cast<double>(kBatchedReplicas * kCycles) /
                    batched.kernel_seconds;
  match = match && batched.checksums.size() == kBatchedReplicas;

  // The timed loops resolved every name up front; any hidden per-cycle
  // string hashing would show up here.
  if (scalar.name_lookups() != 0) {
    std::fputs("unexpected name lookups inside the timed loops\n", stderr);
    std::exit(1);
  }
  res.checksums_match = match;
  return res;
}

struct Config {
  std::string name;
  const Netlist* nl;
  int n;
};

std::string hex64(std::uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

int report_throughput(obs::BenchReporter& rep) {
  // Campaign-shaped hardened arbiter (the fault campaign's bank arbiter is
  // a hardened 3-port round-robin) plus two structural sizes for scale.
  const auto& hardened =
      core::synthesize_round_robin_cached(3, synth::Encoding::kOneHot,
                                          /*harden=*/true);
  const auto& n8 = core::generate_round_robin_cached(
      8, synth::FlowKind::kExpressLike, synth::Encoding::kOneHot);
  const auto& n16 = core::generate_round_robin_cached(
      16, synth::FlowKind::kExpressLike, synth::Encoding::kOneHot);
  const std::vector<Config> configs = {
      {"n3_hardened", &hardened.netlist, 3},
      {"n8_structural", &n8.synth.netlist, 8},
      {"n16_structural", &n16.synth.netlist, 16},
  };

  rep.note("simd_tier", to_string(simd_tier()));
  Table table("simulation throughput — " + std::to_string(kReplicas) +
              " SEU replicas x " + std::to_string(kCycles) +
              " cycles (lane-cycles/sec, event-driven | full settle)");
  table.set_header({"netlist", "LUTs", "scalar", "w64", "w256", "w512",
                    "256/64", "512/64", "batched", "evals/s", "event%"});

  bool all_match = true;
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const Config& cfg = configs[i];
    const ConfigResult r =
        measure_config(*cfg.nl, cfg.n, derive_seed(kSeed, i));
    all_match = all_match && r.checksums_match;
    const double w256_x = r.event[1].cps / r.event[0].cps;
    const double w512_x = r.event[2].cps / r.event[0].cps;
    const double batched_x = r.batched_cps / r.event[0].cps;
    auto cell = [](const Cell& ev, const Cell& fu) {
      return fmt_fixed(ev.cps / 1e6, 0) + "|" + fmt_fixed(fu.cps / 1e6, 0) +
             "M";
    };
    table.add_row({cfg.name, std::to_string(cfg.nl->num_luts()),
                   fmt_fixed(r.scalar_cps / 1e6, 2) + "M",
                   cell(r.event[0], r.full[0]), cell(r.event[1], r.full[1]),
                   cell(r.event[2], r.full[2]), fmt_fixed(w256_x, 1) + "x",
                   fmt_fixed(w512_x, 1) + "x",
                   fmt_fixed(r.batched_cps / 1e6, 0) + "M",
                   fmt_fixed(r.event[2].evals_per_sec / 1e6, 0) + "M",
                   fmt_fixed(r.event_eval_fraction * 100.0, 1) + "%"});
    // The folded per-replica checksum of the shared 512-replica batch —
    // identical across engines, widths, settle modes, SIMD tiers and job
    // counts.  CI reruns the bench under forced $RCARB_SIMD / $RCARB_JOBS
    // and diffs these notes.
    rep.note("checksum_" + cfg.name, hex64(r.folded));
    if (cfg.name == "n3_hardened") {
      // The headline acceptance numbers on the campaign-shaped batch.
      rep.metric("scalar_cycles_per_sec", r.scalar_cps, "cycles/s");
      rep.metric("lane_cycles_per_sec", r.event[0].cps, "cycles/s");
      rep.metric("speedup_x", r.event[0].cps / r.scalar_cps, "x");
      rep.metric("w256_lane_cycles_per_sec", r.event[1].cps, "cycles/s");
      rep.metric("w512_lane_cycles_per_sec", r.event[2].cps, "cycles/s");
      rep.metric("w256_over_w64_x", w256_x, "x");
      rep.metric("w512_over_w64_x", w512_x, "x");
      rep.metric("batched_lane_cycles_per_sec", r.batched_cps, "cycles/s");
      rep.metric("batched_over_w64_x", batched_x, "x");
      rep.metric("lut_evals_per_sec", r.event[2].evals_per_sec, "evals/s");
      rep.metric("event_eval_fraction", r.event_eval_fraction, "ratio");
    } else {
      rep.metric(cfg.name + "_w512_over_w64_x", w512_x, "x");
    }
  }
  rep.note("batch",
           std::to_string(kReplicas) + " replicas x " +
               std::to_string(kCycles) +
               " cycles, one register-bit SEU per replica; batched cell: " +
               std::to_string(kBatchedReplicas) + " replicas across " +
               "$RCARB_JOBS workers at the widest width");
  table.print();
  if (!all_match) {
    std::fputs("scalar/wide/event/full checksums diverged\n", stderr);
    return 1;
  }
  std::puts(
      "one wide pass advances `lanes` replicas: the per-cycle cost is one\n"
      "LUT mux-tree fold per dirty LUT (1, 4 or 8 SIMD words) instead of\n"
      "`lanes` scalar topo passes.\n");
  return 0;
}

void BM_ScalarReplicaBatch(benchmark::State& state) {
  const auto& g = core::synthesize_round_robin_cached(
      static_cast<int>(state.range(0)), synth::Encoding::kOneHot, true);
  const fault::ReplicaBatchSpec spec = make_spec(
      g.netlist, static_cast<int>(state.range(0)), kSeed, kScalarReplicas);
  Simulator sim(g.netlist);
  for (auto _ : state) {
    std::uint64_t folded = 0;
    for (std::size_t r = 0; r < kScalarReplicas; ++r)
      folded = folded * 1099511628211ull + run_scalar_replica(sim, spec, r);
    benchmark::DoNotOptimize(folded);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kScalarReplicas *
                                                    kCycles));
}
BENCHMARK(BM_ScalarReplicaBatch)->Arg(3);

/// One grid cell as a google-benchmark: args are (ports, lanes, mode).
void BM_WideReplicaBatch(benchmark::State& state) {
  const auto& g = core::synthesize_round_robin_cached(
      static_cast<int>(state.range(0)), synth::Encoding::kOneHot, true);
  const auto lanes = static_cast<std::size_t>(state.range(1));
  const fault::ReplicaBatchSpec spec =
      make_spec(g.netlist, static_cast<int>(state.range(0)), kSeed, lanes);
  fault::ReplicaBatchOptions opt;
  opt.lanes = lanes;
  opt.mode = state.range(2) == 0 ? SettleMode::kEventDriven
                                 : SettleMode::kFullTopo;
  opt.jobs = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fault::run_replica_batch(spec, opt).folded);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(lanes * kCycles));
  fault::ReplicaBatchOptions probe = opt;
  state.SetLabel(std::string("simd=") +
                 to_string(fault::run_replica_batch(spec, probe).kernel_tier));
}
BENCHMARK(BM_WideReplicaBatch)
    ->Args({3, 64, 0})
    ->Args({3, 64, 1})
    ->Args({3, 256, 0})
    ->Args({3, 512, 0})
    ->Args({3, 512, 1});

}  // namespace

int main(int argc, char** argv) {
  rcarb::obs::BenchReporter rep("sim_throughput");
  const int rc = report_throughput(rep);
  if (rc != 0) return rc;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  const std::string path = rep.write();
  if (path.empty()) {
    std::fputs("bench report write failed\n", stderr);
    return 1;
  }
  std::printf("bench report: %s\n", path.c_str());
  return 0;
}
