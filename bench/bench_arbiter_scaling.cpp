// Arbiter scaling: area and fmax of the flat Fig. 5 FSM versus the
// hierarchical tree-of-arbiters and the Kogge-Stone parallel-prefix
// variants at N = 16..1024, all through the same synthesis -> LUT-map ->
// CLB-pack -> STA flow (core/hier.hpp).  The flat chain's O(N) scan depth
// caps its fmax almost immediately; the claim this bench pins is the
// crossover — the hierarchical arbiter beats the flat FSM's fmax from
// N = 64 up (CI asserts it), with the prefix variant's constant-fanout
// nets taking the top end.  RCARB_SCALING_SMOKE=1 drops the N = 1024
// column for sanitizer jobs.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/generator.hpp"
#include "obs/bench_report.hpp"
#include "support/parallel.hpp"
#include "support/table.hpp"

namespace {

using rcarb::core::ArbiterKind;
using rcarb::core::GeneratedArbiter;
using rcarb::core::generate_scalable;

constexpr ArbiterKind kKinds[] = {ArbiterKind::kFlatFsm,
                                  ArbiterKind::kHierarchical,
                                  ArbiterKind::kPrefix};

bool smoke_mode() {
  const char* env = std::getenv("RCARB_SCALING_SMOKE");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

std::vector<int> sweep_sizes() {
  std::vector<int> sizes{16, 64, 256};
  if (!smoke_mode()) sizes.push_back(1024);
  return sizes;
}

struct Cell {
  ArbiterKind kind;
  int n;
  std::size_t clbs = 0;
  std::size_t luts = 0;
  std::size_t ffs = 0;
  int lut_depth = 0;
  double fmax_mhz = 0.0;
  double route_ns = 0.0;
  std::size_t max_fanout = 0;
};

void print_scaling(rcarb::obs::BenchReporter& rep) {
  const std::vector<int> sizes = sweep_sizes();
  std::vector<Cell> grid;
  for (const int n : sizes)
    for (const ArbiterKind kind : kKinds) grid.push_back({kind, n});

  // Every cell synthesizes independently and deterministically; the
  // ordered reduction makes the report byte-identical at any RCARB_JOBS.
  rcarb::ordered_map_reduce<Cell>(
      grid.size(),
      [&](std::size_t i) {
        Cell cell = grid[i];
        const GeneratedArbiter g = generate_scalable(cell.kind, cell.n);
        cell.clbs = g.chars.clbs;
        cell.luts = g.chars.luts;
        cell.ffs = g.chars.ffs;
        cell.lut_depth = g.chars.lut_depth;
        cell.fmax_mhz = g.chars.fmax_mhz;
        cell.route_ns = g.timing.reg_to_reg_route_ns;
        cell.max_fanout = g.synth.netlist.max_fanout();
        return cell;
      },
      [&](std::size_t i, Cell cell) { grid[i] = cell; });

  rcarb::Table table(
      "Arbiter scaling — flat Fig. 5 chain vs hierarchical (4-way tree) vs "
      "Kogge-Stone prefix, XC4000e model");
  table.set_header({"N", "CLBs flat", "CLBs hier", "CLBs prefix",
                    "fmax flat", "fmax hier", "fmax prefix", "depth f/h/p",
                    "FFs f/h/p"});
  auto fmt = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.1f", v);
    return std::string(buf);
  };
  const std::size_t kinds = std::size(kKinds);
  for (std::size_t r = 0; r < sizes.size(); ++r) {
    const Cell& f = grid[r * kinds + 0];
    const Cell& h = grid[r * kinds + 1];
    const Cell& p = grid[r * kinds + 2];
    table.add_row({std::to_string(f.n), std::to_string(f.clbs),
                   std::to_string(h.clbs), std::to_string(p.clbs),
                   fmt(f.fmax_mhz), fmt(h.fmax_mhz), fmt(p.fmax_mhz),
                   std::to_string(f.lut_depth) + "/" +
                       std::to_string(h.lut_depth) + "/" +
                       std::to_string(p.lut_depth),
                   std::to_string(f.ffs) + "/" + std::to_string(h.ffs) + "/" +
                       std::to_string(p.ffs)});
  }
  table.print();

  for (const Cell& cell : grid) {
    const std::string tag =
        std::string(to_string(cell.kind)) + "_n" + std::to_string(cell.n);
    rep.metric("clbs_" + tag, static_cast<double>(cell.clbs), "clbs");
    rep.metric("fmax_" + tag, cell.fmax_mhz, "MHz");
    rep.metric("lut_depth_" + tag, static_cast<double>(cell.lut_depth),
               "levels");
    rep.metric("ffs_" + tag, static_cast<double>(cell.ffs), "ffs");
    rep.metric("route_ns_" + tag, cell.route_ns, "ns");
    rep.metric("max_fanout_" + tag, static_cast<double>(cell.max_fanout),
               "sinks");
  }

  // Headlines: the crossover N and the large-N speedup over the flat chain.
  int crossover = 0;
  for (std::size_t r = 0; r < sizes.size(); ++r) {
    const Cell& f = grid[r * kinds + 0];
    const Cell& h = grid[r * kinds + 1];
    if (h.fmax_mhz > f.fmax_mhz) {
      crossover = f.n;
      break;
    }
  }
  const Cell& flat_top = grid[(sizes.size() - 1) * kinds + 0];
  const Cell& hier_top = grid[(sizes.size() - 1) * kinds + 1];
  const Cell& prefix_top = grid[(sizes.size() - 1) * kinds + 2];
  rep.metric("hier_crossover_n", static_cast<double>(crossover), "ports");
  rep.metric("hier_over_flat_fmax_top",
             flat_top.fmax_mhz > 0.0 ? hier_top.fmax_mhz / flat_top.fmax_mhz
                                     : 0.0,
             "x");
  rep.metric("prefix_over_flat_fmax_top",
             flat_top.fmax_mhz > 0.0
                 ? prefix_top.fmax_mhz / flat_top.fmax_mhz
                 : 0.0,
             "x");
  std::printf(
      "crossover: hierarchical beats the flat chain's fmax from N=%d; at "
      "N=%d it is %.0fx faster (prefix: %.0fx) while the flat chain's "
      "grant scan costs %d LUT levels.\n\n",
      crossover, flat_top.n,
      flat_top.fmax_mhz > 0.0 ? hier_top.fmax_mhz / flat_top.fmax_mhz : 0.0,
      flat_top.fmax_mhz > 0.0 ? prefix_top.fmax_mhz / flat_top.fmax_mhz : 0.0,
      flat_top.lut_depth);
}

void BM_GenerateHierarchical(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto g = generate_scalable(ArbiterKind::kHierarchical, n);
    benchmark::DoNotOptimize(g.chars.clbs);
  }
}
BENCHMARK(BM_GenerateHierarchical)->Arg(64)->Arg(256);

void BM_GeneratePrefix(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto g = generate_scalable(ArbiterKind::kPrefix, n);
    benchmark::DoNotOptimize(g.chars.clbs);
  }
}
BENCHMARK(BM_GeneratePrefix)->Arg(64)->Arg(256);

void BM_StepWideHierarchical(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  rcarb::core::HierarchicalArbiter arb(n);
  std::vector<std::uint64_t> req(static_cast<std::size_t>((n + 63) / 64),
                                 ~0ull);
  std::uint64_t granted = 0;
  for (auto _ : state) {
    const int g = arb.step_wide(req);
    // Drop the winner's request for the next cycle so the grant rotates
    // every iteration (full contention, worst-case scan).
    const std::uint64_t bit = 1ull << (static_cast<unsigned>(g) & 63u);
    req[static_cast<std::size_t>(g) >> 6] ^= bit;
    granted += static_cast<std::uint64_t>(g);
    granted += static_cast<std::uint64_t>(arb.step_wide(req));
    req[static_cast<std::size_t>(g) >> 6] ^= bit;
  }
  benchmark::DoNotOptimize(granted);
}
BENCHMARK(BM_StepWideHierarchical)->Arg(256)->Arg(1024);

}  // namespace

int main(int argc, char** argv) {
  rcarb::obs::BenchReporter rep("arbiter_scaling");
  print_scaling(rep);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  const std::string path = rep.write();
  if (path.empty()) {
    std::fputs("bench report write failed\n", stderr);
    return 1;
  }
  std::printf("bench report: %s\n", path.c_str());
  return 0;
}
