// Open-loop service load sweep: offered load from 10% to 300% of measured
// capacity, across the three overload policies of src/service.  The
// robustness claim under test: with bounded queues and early admission
// control, goodput stays at capacity and p99 latency stays bounded no
// matter how far past saturation the offered load goes — while the naive
// block-with-backpressure frontend collapses (its servers grind through a
// deep backlog of requests whose clients timed out long ago, so measured
// goodput falls to ~zero).  Tail-drop sits between the two: goodput holds
// but p99 rides the full queue depth.
//
// Cells run in parallel across $RCARB_JOBS workers; every cell's
// randomness derives from derive_seed(master, cell_index) and the report
// is reduced in cell-index order, so BENCH_service_load.json is
// byte-identical at any job count (CI diffs RCARB_JOBS=1 against 4).
// RCARB_SERVICE_SMOKE=1 shrinks the windows for CI.
// The wide-port sweep drives the same engine at 64/256 (and 1024 outside
// smoke) dispatch ports per resource through all three arbiter structures.
// Per-cycle goodput is structure-invariant (one grant per cycle either
// way); the win is the clock: wall goodput scales each cell by the
// structure's pre-characterized fmax, where the prefix and tree arbiters
// pull decisively ahead of the flat chain's ~1/N decay.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/generator.hpp"
#include "obs/bench_report.hpp"
#include "service/service.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace {

using namespace rcarb;
using service::ArrivalKind;
using service::OverloadPolicy;
using service::ServiceOptions;
using service::ServiceStats;

constexpr std::uint64_t kMasterSeed = 0x5eac1ce5ull;

bool smoke_mode() {
  const char* env = std::getenv("RCARB_SERVICE_SMOKE");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

/// Baseline configuration of one cell: 4 resources x 8 dispatch ports,
/// 6-cycle service bursts, 32-deep bounded queues, 512-cycle client
/// timeout with a 3-retry budget.
ServiceOptions base_options() {
  ServiceOptions o;
  if (smoke_mode()) {
    o.warmup_cycles = 3'000;
    o.measure_cycles = 6'000;
    // The blocking backlog must still fill (and push sojourns far past the
    // client timeout) inside the shorter window.
    o.block_backlog_factor = 16;
  }
  return o;
}

struct CellSpec {
  OverloadPolicy policy;
  double load;  // fraction of measured capacity
};

ServiceStats run_cell(const CellSpec& spec, double capacity,
                      std::uint64_t cell_index) {
  ServiceOptions o = base_options();
  o.policy = spec.policy;
  o.arrivals.rate = spec.load * capacity;
  o.seed = derive_seed(kMasterSeed, cell_index);
  return service::run_service(o);
}

void print_sweep(obs::BenchReporter& rep) {
  const double capacity = service::measure_capacity(base_options());

  const std::vector<OverloadPolicy> policies = {
      OverloadPolicy::kBlock, OverloadPolicy::kTailDrop,
      OverloadPolicy::kAdmitShed};
  const std::vector<double> loads = {0.1, 0.25, 0.5, 0.75, 0.9, 1.0,
                                     1.25, 1.5, 2.0, 2.5, 3.0};
  std::vector<CellSpec> cells;
  for (const OverloadPolicy p : policies)
    for (const double l : loads) cells.push_back({p, l});

  Table table("Open-loop service: goodput and tail latency vs offered load "
              "(fraction of measured capacity)");
  table.set_header({"policy", "load", "offered/cyc", "goodput/cyc", "p50",
                    "p99", "p999", "timeout", "reject", "shed", "retry",
                    "spent"});

  // Per-policy peak goodput and the 3x-overload cell, for the headline.
  std::vector<double> peak(policies.size(), 0.0);
  std::vector<double> at3x(policies.size(), 0.0);
  std::vector<double> p99_at3x(policies.size(), 0.0);

  ordered_map_reduce<ServiceStats>(
      cells.size(),
      [&](std::size_t i) { return run_cell(cells[i], capacity, i); },
      [&](std::size_t i, ServiceStats s) {
        const CellSpec& c = cells[i];
        const auto pi = static_cast<std::size_t>(
            std::find(policies.begin(), policies.end(), c.policy) -
            policies.begin());
        peak[pi] = std::max(peak[pi], s.goodput());
        if (c.load == 3.0) {
          at3x[pi] = s.goodput();
          p99_at3x[pi] = static_cast<double>(s.latency.percentile(0.99));
        }
        const auto pct = static_cast<int>(c.load * 100.0 + 0.5);
        const std::string tag =
            std::string(to_string(c.policy)) + "_" + std::to_string(pct);
        rep.metric("goodput_" + tag, s.goodput(), "req/cycle");
        rep.metric("p50_" + tag,
                   static_cast<double>(s.latency.percentile(0.50)), "cycles");
        rep.metric("p99_" + tag,
                   static_cast<double>(s.latency.percentile(0.99)), "cycles");
        rep.metric("p999_" + tag,
                   static_cast<double>(s.latency.percentile(0.999)),
                   "cycles");
        table.add_row(
            {to_string(c.policy), fmt_fixed(c.load, 2),
             fmt_fixed(s.offered_rate(), 4), fmt_fixed(s.goodput(), 4),
             std::to_string(s.latency.percentile(0.50)),
             std::to_string(s.latency.percentile(0.99)),
             std::to_string(s.latency.percentile(0.999)),
             std::to_string(s.timed_out), std::to_string(s.rejected),
             std::to_string(s.shed), std::to_string(s.retries),
             std::to_string(s.budget_exhausted)});
      });
  table.print();

  // Arrival-shape demo: the admission-control policy absorbing the same
  // *mean* overload delivered as bursts and as a diurnal ramp.
  Table shapes("Admission control under non-stationary arrivals "
               "(1.5x mean load)");
  shapes.set_header({"arrivals", "offered/cyc", "goodput/cyc", "p99",
                     "p999", "shed"});
  const std::vector<ArrivalKind> kinds = {ArrivalKind::kBursty,
                                          ArrivalKind::kDiurnal};
  ordered_map_reduce<ServiceStats>(
      kinds.size(),
      [&](std::size_t i) {
        ServiceOptions o = base_options();
        o.policy = OverloadPolicy::kAdmitShed;
        o.arrivals.kind = kinds[i];
        o.arrivals.rate = 1.5 * capacity;
        o.seed = derive_seed(kMasterSeed, 1000 + i);
        return service::run_service(o);
      },
      [&](std::size_t i, ServiceStats s) {
        const std::string tag = std::string(to_string(kinds[i])) + "_150";
        rep.metric("goodput_" + tag, s.goodput(), "req/cycle");
        rep.metric("p99_" + tag,
                   static_cast<double>(s.latency.percentile(0.99)), "cycles");
        shapes.add_row({to_string(kinds[i]), fmt_fixed(s.offered_rate(), 4),
                        fmt_fixed(s.goodput(), 4),
                        std::to_string(s.latency.percentile(0.99)),
                        std::to_string(s.latency.percentile(0.999)),
                        std::to_string(s.shed)});
      });
  shapes.print();

  const std::size_t bi = 0, ti = 1, ai = 2;  // policy indices
  const double admit_retention = peak[ai] == 0.0 ? 0.0 : at3x[ai] / peak[ai];
  const double block_retention = peak[bi] == 0.0 ? 0.0 : at3x[bi] / peak[bi];
  rep.metric("capacity", capacity, "req/cycle");
  rep.metric("peak_goodput_block", peak[bi], "req/cycle");
  rep.metric("peak_goodput_tail_drop", peak[ti], "req/cycle");
  rep.metric("peak_goodput_admit_shed", peak[ai], "req/cycle");
  rep.metric("admit_shed_retention_3x", admit_retention, "ratio");
  rep.metric("tail_drop_retention_3x",
             peak[ti] == 0.0 ? 0.0 : at3x[ti] / peak[ti], "ratio");
  rep.metric("block_retention_3x", block_retention, "ratio");
  rep.metric("admit_shed_p99_3x", p99_at3x[ai], "cycles");
  rep.metric("block_p99_3x", p99_at3x[bi], "cycles");
  rep.note("smoke", smoke_mode() ? "1" : "0");
  rep.note("jobs", "RCARB_JOBS-controlled; output is identical at any job "
                   "count");

  std::printf(
      "capacity %.4f req/cycle\n"
      "3x overload retention: admit-shed %.3f (p99<=%.0f), tail-drop %.3f, "
      "block %.3f — admission control %s the >=0.80 headline\n\n",
      capacity, admit_retention, p99_at3x[ai],
      peak[ti] == 0.0 ? 0.0 : at3x[ti] / peak[ti], block_retention,
      admit_retention >= 0.80 ? "meets" : "MISSES");
}

// ------------------------------------------------------- wide-port sweep

constexpr core::ArbiterKind kWideKinds[] = {core::ArbiterKind::kFlatFsm,
                                            core::ArbiterKind::kHierarchical,
                                            core::ArbiterKind::kPrefix};

core::ArbiterChoice to_choice(core::ArbiterKind kind) {
  switch (kind) {
    case core::ArbiterKind::kFlatFsm: return core::ArbiterChoice::kFlatFsm;
    case core::ArbiterKind::kHierarchical:
      return core::ArbiterChoice::kHierarchical;
    case core::ArbiterKind::kPrefix: return core::ArbiterChoice::kPrefix;
  }
  return core::ArbiterChoice::kFlatFsm;
}

void print_wide_sweep(obs::BenchReporter& rep) {
  std::vector<int> widths{64, 256};
  if (!smoke_mode()) widths.push_back(1024);
  const std::vector<double> loads = {0.5, 0.9, 1.2};

  // Pre-characterized fmax per (kind, width), fetched serially up front:
  // the parallel cells below must never race the synthesis memo, and the
  // cells themselves stay pure cycle-level runs.
  std::map<std::pair<int, int>, double> fmax_mhz;
  for (const int n : widths)
    for (const core::ArbiterKind kind : kWideKinds)
      fmax_mhz[{static_cast<int>(kind), n}] =
          core::generate_scalable_cached(kind, n).chars.fmax_mhz;

  struct WideCell {
    core::ArbiterKind kind;
    int ports;
    double load;  // fraction of the 2 req/cycle two-resource capacity
  };
  std::vector<WideCell> cells;
  for (const int n : widths)
    for (const core::ArbiterKind kind : kWideKinds)
      for (const double l : loads) cells.push_back({kind, n, l});

  Table table("Wide-port service: per-cycle and fmax-scaled goodput by "
              "arbiter structure (2 resources, 1-cycle service)");
  table.set_header({"ports", "kind", "fmax MHz", "load", "goodput/cyc",
                    "wall Mreq/s", "p99", "reject"});

  // wall_goodput at the knee (1.2x) per (kind, width), for the headline
  // and the CI ordering assertion.
  std::map<std::pair<int, int>, double> knee_wall;

  ordered_map_reduce<ServiceStats>(
      cells.size(),
      [&](std::size_t i) {
        const WideCell& c = cells[i];
        ServiceOptions o = base_options();
        o.resources = 2;
        o.ports = c.ports;
        o.service_cycles = 1;
        o.queue_capacity = 32;
        o.policy = OverloadPolicy::kTailDrop;
        o.arbiter_kind = to_choice(c.kind);
        o.arrivals.rate = c.load * 2.0;
        // The seed derives from (width, load) only, so the three kinds of
        // one cell face identical arrival/routing/jitter streams — their
        // per-cycle counters must tie, which CI cross-checks.
        o.seed = derive_seed(kMasterSeed,
                             2000 + static_cast<std::uint64_t>(c.ports) * 8 +
                                 static_cast<std::uint64_t>(c.load * 10.0));
        return service::run_service(o);
      },
      [&](std::size_t i, ServiceStats s) {
        const WideCell& c = cells[i];
        const double fmax = fmax_mhz[{static_cast<int>(c.kind), c.ports}];
        const double wall = s.goodput() * fmax;  // Mreq/s at the arbiter clock
        const auto pct = static_cast<int>(c.load * 100.0 + 0.5);
        if (pct == 120) knee_wall[{static_cast<int>(c.kind), c.ports}] = wall;
        const std::string tag = "wide_" + std::string(to_string(c.kind)) +
                                "_" + std::to_string(c.ports) + "_" +
                                std::to_string(pct);
        rep.metric("goodput_" + tag, s.goodput(), "req/cycle");
        rep.metric("p99_" + tag,
                   static_cast<double>(s.latency.percentile(0.99)), "cycles");
        rep.metric("wall_goodput_" + tag, wall, "Mreq/s");
        table.add_row({std::to_string(c.ports), to_string(c.kind),
                       fmt_fixed(fmax, 1), fmt_fixed(c.load, 2),
                       fmt_fixed(s.goodput(), 4), fmt_fixed(wall, 2),
                       std::to_string(s.latency.percentile(0.99)),
                       std::to_string(s.rejected)});
      });
  table.print();

  for (const int n : widths) {
    const double flat =
        knee_wall[{static_cast<int>(core::ArbiterKind::kFlatFsm), n}];
    const double prefix =
        knee_wall[{static_cast<int>(core::ArbiterKind::kPrefix), n}];
    const double hier =
        knee_wall[{static_cast<int>(core::ArbiterKind::kHierarchical), n}];
    rep.metric("prefix_over_flat_wall_goodput_" + std::to_string(n),
               flat > 0.0 ? prefix / flat : 0.0, "x");
    rep.metric("hier_over_flat_wall_goodput_" + std::to_string(n),
               flat > 0.0 ? hier / flat : 0.0, "x");
    if (n >= 256)
      std::printf("wide %d ports: prefix wall goodput %.2f Mreq/s vs flat "
                  "%.2f — prefix %s the >= flat bar\n",
                  n, prefix, flat, prefix >= flat ? "meets" : "MISSES");
  }
  std::printf("\n");
}

void BM_ServiceCell(benchmark::State& state) {
  const OverloadPolicy policy = state.range(0) == 0
                                    ? OverloadPolicy::kBlock
                                    : OverloadPolicy::kAdmitShed;
  for (auto _ : state) {
    ServiceOptions o;
    o.policy = policy;
    o.warmup_cycles = 1'000;
    o.measure_cycles = 4'000;
    o.arrivals.rate = 1.0;  // 1.5x of the default config's capacity
    benchmark::DoNotOptimize(service::run_service(o));
  }
}
BENCHMARK(BM_ServiceCell)->Arg(0)->Arg(1);

void BM_ArrivalStep(benchmark::State& state) {
  service::ArrivalOptions ao;
  ao.kind = static_cast<ArrivalKind>(state.range(0));
  ao.rate = 0.5;
  service::ArrivalProcess arr(ao, 42);
  for (auto _ : state) benchmark::DoNotOptimize(arr.step());
}
BENCHMARK(BM_ArrivalStep)->Arg(0)->Arg(1)->Arg(2);

}  // namespace

int main(int argc, char** argv) {
  rcarb::obs::BenchReporter rep("service_load");
  print_sweep(rep);
  print_wide_sweep(rep);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  const std::string path = rep.write();
  if (path.empty()) {
    std::fputs("bench report write failed\n", stderr);
    return 1;
  }
  std::printf("bench report: %s\n", path.c_str());
  return 0;
}
