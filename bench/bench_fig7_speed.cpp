// Fig. 7 reproduction: N-input arbiter maximum clock speed (MHz) under the
// XC4000e -3 timing model for the paper's three synthesis series.  The
// paper's band runs from ~85 MHz at N=2 down to ~26 MHz at N=10 and notes
// "since 10-bit arbiters clocked at 26 MHz, they did not introduce any
// overhead on the clock speed" of typical ≤25 MHz designs — the reproduced
// claims are the decay shape and that comfortable margin.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/generator.hpp"
#include "obs/bench_report.hpp"
#include "support/table.hpp"
#include "timing/sta.hpp"

namespace {

using rcarb::core::CheckMode;
using rcarb::core::generate_round_robin_cached;
using rcarb::core::generate_self_checking_cached;
using rcarb::synth::Encoding;
using rcarb::synth::FlowKind;

void print_fig7(rcarb::obs::BenchReporter& rep) {
  rcarb::Table table(
      "Fig. 7 — N-input arbiter clock speed (MHz), XC4000e-3 model "
      "[paper: ~85 MHz at N=2 decaying to ~26 MHz at N=10]");
  table.set_header({"N", "Express one-hot", "Express compact",
                    "Synplify one-hot", "DMR 1-hot", "TMR 1-hot",
                    "LUT depth (Expr 1-hot)"});
  for (int n = 2; n <= 10; ++n) {
    const auto& eo = generate_round_robin_cached(n, FlowKind::kExpressLike,
                                                 Encoding::kOneHot);
    const auto& ec = generate_round_robin_cached(n, FlowKind::kExpressLike,
                                                 Encoding::kCompact);
    const auto& so = generate_round_robin_cached(n, FlowKind::kSynplifyLike,
                                                 Encoding::kOneHot);
    // Self-checking variants: the comparator / voter sits on the next-state
    // path, so the redundancy's clock cost shows up here, not just in area.
    const auto& dm = generate_self_checking_cached(n, CheckMode::kDuplicate,
                                                   Encoding::kOneHot);
    const auto& tm = generate_self_checking_cached(n, CheckMode::kTmr,
                                                   Encoding::kOneHot);
    table.add_row({std::to_string(n), rcarb::fmt_fixed(eo.chars.fmax_mhz, 1),
                   rcarb::fmt_fixed(ec.chars.fmax_mhz, 1),
                   rcarb::fmt_fixed(so.chars.fmax_mhz, 1),
                   rcarb::fmt_fixed(dm.chars.fmax_mhz, 1),
                   rcarb::fmt_fixed(tm.chars.fmax_mhz, 1),
                   std::to_string(eo.chars.lut_depth)});
    if (n == 2) rep.metric("fmax_onehot_n2_mhz", eo.chars.fmax_mhz, "mhz");
    if (n == 10) {
      rep.metric("fmax_onehot_n10_mhz", eo.chars.fmax_mhz, "mhz");
      rep.metric("fmax_dmr_n10_mhz", dm.chars.fmax_mhz, "mhz");
      rep.metric("fmax_tmr_n10_mhz", tm.chars.fmax_mhz, "mhz");
    }
  }
  table.print();
  std::puts(
      "every arbiter stays well above the ~6 MHz FFT design clock: arbiters\n"
      "never limit the system clock (the paper's Sec. 4.2 conclusion) —\n"
      "including the self-checking variants used by the degradation runs.\n");
}

void BM_StaticTimingAnalysis(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto& g =
      generate_round_robin_cached(n, FlowKind::kExpressLike,
                                  Encoding::kOneHot);
  const auto model = rcarb::timing::xc4000e_speed3();
  for (auto _ : state) {
    auto report = rcarb::timing::analyze(g.synth.netlist, model);
    benchmark::DoNotOptimize(report.fmax_mhz);
  }
}
BENCHMARK(BM_StaticTimingAnalysis)->DenseRange(2, 10, 4);

}  // namespace

int main(int argc, char** argv) {
  rcarb::obs::BenchReporter rep("fig7_speed");
  print_fig7(rep);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  const std::string path = rep.write();
  if (path.empty()) {
    std::fputs("bench report write failed\n", stderr);
    return 1;
  }
  std::printf("bench report: %s\n", path.c_str());
  return 0;
}
