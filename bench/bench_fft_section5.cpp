// Section 5 reproduction: the 4x4-pixel 2-D FFT through the whole
// SPARCS-like flow on the Wildforce-like board.
//
// Paper results being reproduced:
//   * three temporal partitions; TP#0 carries a 6-input and a 2-input
//     arbiter, TP#1 a 4-input arbiter, TP#2 none;
//   * the design clocks at ~6 MHz (arbiters far faster, so no clock cost);
//   * a 512x512 image takes ~4.4 s in hardware vs ~6.8 s in software on a
//     Pentium-150 — the low-end RC board beats the CPU.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "board/board.hpp"
#include "fft/fft_design.hpp"
#include "fft/workload.hpp"
#include "flow/sparcs_flow.hpp"
#include "obs/bench_report.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"
#include "support/text.hpp"

namespace {

using namespace rcarb;

fft::Block sample_block() {
  Rng rng(2026);
  fft::Block block{};
  for (auto& row : block)
    for (auto& v : row) v = rng.next_in(-128, 127);
  return block;
}

flow::FlowOptions base_options(const fft::FftDesign& d,
                               const fft::Block& block) {
  flow::FlowOptions o;
  for (std::size_t r = 0; r < 4; ++r)
    o.preload.emplace_back(
        d.mi[r], std::vector<std::int64_t>(block[r].begin(), block[r].end()));
  return o;
}

std::string arbiter_list(const flow::PartitionReport& pr) {
  if (pr.plan.arbiters.empty()) return "none";
  std::vector<std::string> parts;
  for (const auto& a : pr.plan.arbiters)
    parts.push_back(std::to_string(a.ports.size()) + "-input@" +
                    a.resource_name);
  return join(parts, ", ");
}

bool spectrum_ok(const flow::FlowReport& report, const fft::FftDesign& d,
                 const fft::Block& block) {
  const fft::BlockSpectrum want = fft::fft2d_4x4(block);
  for (std::size_t j = 0; j < 4; ++j) {
    const auto& words = report.final_memory[d.mo[j]];
    for (std::size_t k = 0; k < 4; ++k)
      if (words[k] != want[j][k].re || words[4 + k] != want[j][k].im)
        return false;
  }
  return true;
}

void print_flow(const char* title, const flow::FlowReport& report,
                const fft::FftDesign& d, const fft::Block& block) {
  Table table(title);
  table.set_header({"TP", "tasks", "arbiters", "arbiter CLBs", "cycles",
                    "waits", "conflicts"});
  for (std::size_t tp = 0; tp < report.partitions.size(); ++tp) {
    const auto& pr = report.partitions[tp];
    std::size_t clbs = 0;
    for (const auto& c : pr.arbiter_chars) clbs += c.clbs;
    std::uint64_t waits = 0;
    for (const auto& ts : pr.sim.tasks) waits += ts.grant_wait_cycles;
    table.add_row({std::to_string(tp), std::to_string(pr.tasks.size()),
                   arbiter_list(pr), std::to_string(clbs),
                   std::to_string(pr.sim.cycles), std::to_string(waits),
                   std::to_string(pr.sim.bank_conflicts)});
  }
  table.print();
  std::printf("  design clock %.1f MHz (slowest arbiter %.1f MHz), "
              "cycles/block %llu, FFT output %s\n\n",
              report.design_clock_mhz, report.min_arbiter_fmax_mhz,
              static_cast<unsigned long long>(report.total_cycles),
              spectrum_ok(report, d, block) ? "bit-exact" : "WRONG");
}

void print_section5(obs::BenchReporter& rep) {
  const fft::FftDesign d = fft::build_fft_design();
  const fft::Block block = sample_block();
  const board::Board wf = board::wildforce();

  // ---- pinned to the paper's Fig. 11 partitioning/binding. ----
  flow::FlowOptions pinned_options = base_options(d, block);
  const auto pinned = fft::paper_partitions(d);
  pinned_options.pinned_partitions = &pinned;
  pinned_options.pinned_binding = [&](std::size_t tp) {
    return fft::paper_binding(d, tp);
  };
  const flow::FlowReport paper_flow = run_flow(d.graph, wf, pinned_options);
  print_flow(
      "Sec. 5 — FFT on Wildforce, pinned to the paper's Fig. 11 mapping "
      "[paper: TP0 {6-input, 2-input}, TP1 {4-input}, TP2 none]",
      paper_flow, d, block);

  // ---- fully automatic flow. ----
  const flow::FlowReport auto_flow =
      run_flow(d.graph, wf, base_options(d, block));
  print_flow("Sec. 5 — same design, fully automatic partitioning/mapping",
             auto_flow, d, block);

  // ---- the wall-clock comparison. ----
  const fft::ImageWorkload image{};
  const fft::HardwareModel hw{paper_flow.design_clock_mhz};
  const fft::PentiumModel cpu{};
  Table wall("Sec. 5 — 512x512 image, hardware vs software "
             "[paper: 4.4 s RC board vs 6.8 s Pentium-150]");
  wall.set_header({"implementation", "cycles/block", "clock", "seconds",
                   "paper"});
  wall.add_row({"RC board (pinned flow)",
                std::to_string(paper_flow.total_cycles),
                fmt_fixed(paper_flow.design_clock_mhz, 1) + " MHz",
                fmt_fixed(hw.seconds(image, paper_flow.total_cycles), 2),
                "4.4 s"});
  wall.add_row({"RC board (automatic flow)",
                std::to_string(auto_flow.total_cycles),
                fmt_fixed(auto_flow.design_clock_mhz, 1) + " MHz",
                fmt_fixed(hw.seconds(image, auto_flow.total_cycles), 2),
                "-"});
  wall.add_row({"software (Pentium-150 model)",
                fmt_fixed(cpu.cycles_per_block(), 0), "150.0 MHz",
                fmt_fixed(cpu.seconds(image), 2), "6.8 s"});
  rep.metric("pinned_cycles_per_block",
             static_cast<double>(paper_flow.total_cycles), "cycles");
  rep.metric("auto_cycles_per_block",
             static_cast<double>(auto_flow.total_cycles), "cycles");
  rep.metric("design_clock_mhz", paper_flow.design_clock_mhz, "mhz");
  rep.metric("hw_seconds", hw.seconds(image, paper_flow.total_cycles), "s");
  rep.metric("sw_seconds", cpu.seconds(image), "s");
  rep.note("spectrum", spectrum_ok(paper_flow, d, block) ? "bit-exact"
                                                         : "WRONG");
  wall.print();
  std::puts(
      "the low-end multi-FPGA board at 6 MHz beats the 150 MHz CPU by\n"
      "~1.5x, with all arbitration inserted automatically — the paper's\n"
      "headline result.\n");
}

void BM_FullPinnedFlow(benchmark::State& state) {
  const fft::FftDesign d = fft::build_fft_design();
  const fft::Block block = sample_block();
  const board::Board wf = board::wildforce();
  flow::FlowOptions o = base_options(d, block);
  const auto pinned = fft::paper_partitions(d);
  o.pinned_partitions = &pinned;
  o.pinned_binding = [&](std::size_t tp) { return fft::paper_binding(d, tp); };
  for (auto _ : state) {
    auto report = run_flow(d.graph, wf, o);
    benchmark::DoNotOptimize(report.total_cycles);
  }
}
BENCHMARK(BM_FullPinnedFlow);

void BM_FullAutomaticFlow(benchmark::State& state) {
  const fft::FftDesign d = fft::build_fft_design();
  const fft::Block block = sample_block();
  const board::Board wf = board::wildforce();
  const flow::FlowOptions o = base_options(d, block);
  for (auto _ : state) {
    auto report = run_flow(d.graph, wf, o);
    benchmark::DoNotOptimize(report.total_cycles);
  }
}
BENCHMARK(BM_FullAutomaticFlow);

}  // namespace

int main(int argc, char** argv) {
  rcarb::obs::BenchReporter rep("fft_section5");
  print_section5(rep);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  const std::string path = rep.write();
  if (path.empty()) {
    std::fputs("bench report write failed\n", stderr);
    return 1;
  }
  std::printf("bench report: %s\n", path.c_str());
  return 0;
}
