// Sec. 5 optimization ablation: dependency-aware arbiter elision.  The
// paper observes that the F and g tasks never overlap ("g tasks have to
// wait until the F tasks finish"), so the inserted 6-input arbiter is
// larger than necessary: "the arbiter insertion tool can easily detect
// this scenario based on the dependencies between the tasks".  With
// elision the ML bank's contention group splits into the concurrent
// components {F1..F4} and {g1r, g2r}.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "board/board.hpp"
#include "core/insertion.hpp"
#include "fft/fft_design.hpp"
#include "flow/sparcs_flow.hpp"
#include "obs/bench_report.hpp"
#include "rcsim/system_sim.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"
#include "support/text.hpp"

namespace {

using namespace rcarb;

flow::FlowReport run_fft(bool elide) {
  const fft::FftDesign d = fft::build_fft_design();
  Rng rng(99);
  fft::Block block{};
  for (auto& row : block)
    for (auto& v : row) v = rng.next_in(-100, 100);
  flow::FlowOptions o;
  for (std::size_t r = 0; r < 4; ++r)
    o.preload.emplace_back(
        d.mi[r], std::vector<std::int64_t>(block[r].begin(), block[r].end()));
  static const auto pinned = fft::paper_partitions(d);
  o.pinned_partitions = &pinned;
  o.pinned_binding = [d](std::size_t tp) { return fft::paper_binding(d, tp); };
  o.insertion.elide_serialized = elide;
  return run_flow(d.graph, board::wildforce(), o);
}

std::string arbiter_sizes(const flow::FlowReport& report, std::size_t tp) {
  std::vector<std::string> sizes;
  for (const auto& a : report.partitions[tp].plan.arbiters)
    sizes.push_back(std::to_string(a.ports.size()));
  return sizes.empty() ? "none" : join(sizes, "+");
}

void print_elision(obs::BenchReporter& rep) {
  const flow::FlowReport base = run_fft(false);
  const flow::FlowReport elided = run_fft(true);
  rep.metric("base_arbiter_clbs",
             static_cast<double>(base.total_arbiter_clbs), "clbs");
  rep.metric("elided_arbiter_clbs",
             static_cast<double>(elided.total_arbiter_clbs), "clbs");
  rep.metric("base_cycles", static_cast<double>(base.total_cycles), "cycles");
  rep.metric("elided_cycles", static_cast<double>(elided.total_cycles),
             "cycles");

  Table table(
      "Sec. 5 optimization — dependency-aware arbiter elision on the FFT "
      "[paper: the 6-input ML arbiter over-serves serialized F/g tasks]");
  table.set_header({"metric", "base insertion", "with elision"});
  table.add_row({"TP0 arbiter sizes", arbiter_sizes(base, 0),
                 arbiter_sizes(elided, 0)});
  table.add_row({"TP1 arbiter sizes", arbiter_sizes(base, 1),
                 arbiter_sizes(elided, 1)});
  table.add_row({"TP2 arbiter sizes", arbiter_sizes(base, 2),
                 arbiter_sizes(elided, 2)});
  table.add_row({"total arbiter CLBs", std::to_string(base.total_arbiter_clbs),
                 std::to_string(elided.total_arbiter_clbs)});
  table.add_row({"slowest arbiter Fmax (MHz)",
                 fmt_fixed(base.min_arbiter_fmax_mhz, 1),
                 fmt_fixed(elided.min_arbiter_fmax_mhz, 1)});
  table.add_row({"total cycles", std::to_string(base.total_cycles),
                 std::to_string(elided.total_cycles)});
  table.print();
  std::puts(
      "the Arb6 splits into Arb4 + Arb2: smaller scan rings, less area,\n"
      "faster arbiters.  Cycle count is unchanged on this workload because\n"
      "F and g never actually contend — which is precisely why the split\n"
      "is safe.\n");

  // A second scenario where elision removes arbitration entirely: two
  // serialized tasks sharing a bank (producer -> consumer) pay the +2
  // protocol cycles per burst only without elision.
  tg::TaskGraph g("pipeline");
  g.add_segment("buf", 128, 32);
  tg::Program producer;
  producer.load_imm(0, 0);
  for (int i = 0; i < 8; ++i) producer.store(0, 0, 0, i);
  producer.halt();
  tg::Program consumer;
  consumer.load_imm(0, 0);
  for (int i = 0; i < 8; ++i) consumer.load(1, 0, 0, i);
  consumer.halt();
  const auto prod = g.add_task("producer", producer, 10);
  const auto cons = g.add_task("consumer", consumer, 10);
  g.add_control_dep(prod, cons);
  core::Binding binding;
  binding.task_to_pe = {0, 1};
  binding.segment_to_bank = {0};
  binding.num_banks = 1;
  binding.bank_names = {"MEM"};

  Table pipe("producer->consumer pipeline through one bank");
  pipe.set_header({"insertion", "arbiters", "cycles"});
  for (const bool elide : {false, true}) {
    core::InsertionOptions io;
    io.elide_serialized = elide;
    const auto ins = core::insert_arbitration(g, binding, io);
    rcsim::SystemSimulator sim(ins.graph, binding, ins.plan);
    const auto r = sim.run({prod, cons});
    pipe.add_row({elide ? "with elision" : "base",
                  std::to_string(ins.plan.arbiters.size()),
                  std::to_string(r.cycles)});
    rep.metric(elide ? "pipeline_elided_cycles" : "pipeline_base_cycles",
               static_cast<double>(r.cycles), "cycles");
  }
  pipe.print();
  std::puts(
      "serialized tasks need no arbiter at all: elision removes it and the\n"
      "Fig. 8 protocol cycles with it — the latency reduction the paper\n"
      "anticipates at the end of Sec. 5.\n");
}

void BM_InsertionWithElision(benchmark::State& state) {
  const fft::FftDesign d = fft::build_fft_design();
  const core::Binding binding = fft::paper_binding(d, 0);
  core::InsertionOptions io;
  io.elide_serialized = state.range(0) != 0;
  const auto tasks = fft::paper_partitions(d)[0];
  for (auto _ : state) {
    auto ins = core::insert_arbitration(d.graph, binding, io, &tasks);
    benchmark::DoNotOptimize(ins.plan.arbiters.size());
  }
}
BENCHMARK(BM_InsertionWithElision)->Arg(0)->Arg(1);

}  // namespace

int main(int argc, char** argv) {
  rcarb::obs::BenchReporter rep("elision");
  print_elision(rep);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  const std::string path = rep.write();
  if (path.empty()) {
    std::fputs("bench report write failed\n", stderr);
    return 1;
  }
  std::printf("bench report: %s\n", path.c_str());
  return 0;
}
