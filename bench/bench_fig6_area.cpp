// Fig. 6 reproduction: N-input arbiter sizes in CLBs, N = 2..10, for the
// three synthesis series of the paper (FPGA-Express one-hot, FPGA-Express
// compact, Synplify one-hot).  The paper reports ~40 CLBs for the 10-input
// arbiter with one-hot encoding and monotone growth for all series; the
// reproduced claim is that ordering and growth, not the 1998 tools'
// absolute counts.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/generator.hpp"
#include "obs/bench_report.hpp"
#include "support/table.hpp"

namespace {

using rcarb::core::CheckMode;
using rcarb::core::generate_round_robin;
using rcarb::core::generate_round_robin_cached;
using rcarb::core::generate_self_checking_cached;
using rcarb::synth::Encoding;
using rcarb::synth::FlowKind;

void print_fig6(rcarb::obs::BenchReporter& rep) {
  rcarb::Table table(
      "Fig. 6 — N-input arbiter area (CLBs), XC4000e model "
      "[paper: one-hot ~40 CLBs at N=10, all series monotone]");
  table.set_header({"N", "Express one-hot", "Express compact",
                    "Synplify one-hot", "DMR 1-hot", "TMR 1-hot",
                    "LUTs (Expr 1-hot)", "FFs (Expr 1-hot)"});
  for (int n = 2; n <= 10; ++n) {
    const auto& eo = generate_round_robin_cached(n, FlowKind::kExpressLike,
                                                 Encoding::kOneHot);
    const auto& ec = generate_round_robin_cached(n, FlowKind::kExpressLike,
                                                 Encoding::kCompact);
    const auto& so = generate_round_robin_cached(n, FlowKind::kSynplifyLike,
                                                 Encoding::kOneHot);
    // The self-checking variants sit beside the plain series so the
    // degradation campaigns' redundancy is priced on the same axis.
    const auto& dm = generate_self_checking_cached(n, CheckMode::kDuplicate,
                                                   Encoding::kOneHot);
    const auto& tm = generate_self_checking_cached(n, CheckMode::kTmr,
                                                   Encoding::kOneHot);
    table.add_row({std::to_string(n), std::to_string(eo.chars.clbs),
                   std::to_string(ec.chars.clbs),
                   std::to_string(so.chars.clbs),
                   std::to_string(dm.chars.clbs),
                   std::to_string(tm.chars.clbs),
                   std::to_string(eo.chars.luts),
                   std::to_string(eo.chars.ffs)});
    if (n == 10) {
      rep.metric("clbs_onehot_n10", static_cast<double>(eo.chars.clbs),
                 "clbs");
      rep.metric("clbs_compact_n10", static_cast<double>(ec.chars.clbs),
                 "clbs");
      rep.metric("clbs_synplify_n10", static_cast<double>(so.chars.clbs),
                 "clbs");
      rep.metric("clbs_dmr_n10", static_cast<double>(dm.chars.clbs), "clbs");
      rep.metric("clbs_tmr_n10", static_cast<double>(tm.chars.clbs), "clbs");
    }
  }
  table.print();
  std::puts(
      "series shape: all monotone in N; compact overtakes one-hot once the\n"
      "dense state decode dominates — the Fig. 6 crossover.  DMR/TMR pay\n"
      "~2-3x the plain one-hot area for the error wire and the vote.\n");
}

void BM_GenerateArbiter(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto g = generate_round_robin(n, FlowKind::kExpressLike,
                                  Encoding::kOneHot);
    benchmark::DoNotOptimize(g.chars.clbs);
  }
}
BENCHMARK(BM_GenerateArbiter)->DenseRange(2, 10, 2);

void BM_GenerateArbiterCompact(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto g = generate_round_robin(n, FlowKind::kExpressLike,
                                  Encoding::kCompact);
    benchmark::DoNotOptimize(g.chars.clbs);
  }
}
BENCHMARK(BM_GenerateArbiterCompact)->DenseRange(2, 10, 4);

}  // namespace

int main(int argc, char** argv) {
  rcarb::obs::BenchReporter rep("fig6_area");
  print_fig6(rep);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  const std::string path = rep.write();
  if (path.empty()) {
    std::fputs("bench report write failed\n", stderr);
    return 1;
  }
  std::printf("bench report: %s\n", path.c_str());
  return 0;
}
