// Fig. 8 reproduction: the task-modification protocol cost.  "Assuming a
// task will receive its grant immediately, each arbitered access incurs two
// extra clock cycles due to the arbitration protocol", and the batching
// parameter M ("a task has to make its Request=0 between each M accesses")
// trades solo overhead against peer waiting time.  The table sweeps M for a
// task issuing 16 accesses, solo (grants immediate) and against a
// contending peer.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/insertion.hpp"
#include "rcsim/system_sim.hpp"
#include "support/table.hpp"

namespace {

using namespace rcarb;

struct Workload {
  tg::TaskGraph graph{"fig8"};
  core::Binding binding;

  explicit Workload(int accesses) {
    graph.add_segment("s0", 128, 32);
    graph.add_segment("s1", 128, 32);
    for (int t = 0; t < 2; ++t) {
      tg::Program p;
      p.load_imm(0, 0);
      for (int i = 0; i < accesses; ++i) p.store(t, 0, 0, i % 32);
      p.halt();
      graph.add_task("t" + std::to_string(t), p, 10);
    }
    binding.task_to_pe = {0, 1};
    binding.segment_to_bank = {0, 0};
    binding.num_banks = 1;
    binding.bank_names = {"MEM"};
  }
};

constexpr int kAccesses = 16;

std::uint64_t run_cycles(const Workload& w, int batch_m,
                         const std::vector<tg::TaskId>& tasks) {
  core::InsertionOptions options;
  options.batch_m = batch_m;
  const auto ins = core::insert_arbitration(w.graph, w.binding, options);
  rcsim::SystemSimulator sim(ins.graph, w.binding, ins.plan);
  return sim.run(tasks).cycles;
}

std::uint64_t max_wait(const Workload& w, int batch_m) {
  core::InsertionOptions options;
  options.batch_m = batch_m;
  const auto ins = core::insert_arbitration(w.graph, w.binding, options);
  rcsim::SystemSimulator sim(ins.graph, w.binding, ins.plan);
  const auto r = sim.run({0, 1});
  std::uint64_t worst = 0;
  for (const auto& arb : r.arbiters) worst = std::max(worst, arb.max_wait);
  return worst;
}

void print_fig8() {
  // Unarbitrated baseline: 1 + kAccesses cycles.
  Workload w(kAccesses);
  const std::uint64_t solo_base = 1 + kAccesses;

  Table table(
      "Fig. 8 — task modification overhead, 16 arbitered accesses "
      "[paper: +2 cycles per burst when the grant is immediate]");
  table.set_header({"M", "bursts", "solo cycles", "solo overhead",
                    "overhead/burst", "2-task cycles", "peer max wait"});
  for (int m : {1, 2, 4, 8, 16}) {
    const std::uint64_t solo = run_cycles(w, m, {0});
    const int bursts = (kAccesses + m - 1) / m;
    const std::uint64_t contended = run_cycles(w, m, {0, 1});
    table.add_row({std::to_string(m), std::to_string(bursts),
                   std::to_string(solo),
                   "+" + std::to_string(solo - solo_base),
                   fmt_fixed(static_cast<double>(solo - solo_base) /
                                 static_cast<double>(bursts),
                             1),
                   std::to_string(contended), std::to_string(max_wait(w, m))});
  }
  table.print();
  std::puts(
      "small M: more protocol overhead but short peer waits; large M: lean\n"
      "solo execution but a peer can wait a whole burst — exactly the\n"
      "trade the paper's M parameter controls (Sec. 4.3 / future work).\n");
}

void BM_RewriteAndSimulate(benchmark::State& state) {
  Workload w(kAccesses);
  const int m = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_cycles(w, m, {0, 1}));
  }
}
BENCHMARK(BM_RewriteAndSimulate)->Arg(1)->Arg(2)->Arg(8);

}  // namespace

int main(int argc, char** argv) {
  print_fig8();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
