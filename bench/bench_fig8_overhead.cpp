// Fig. 8 reproduction: the task-modification protocol cost.  "Assuming a
// task will receive its grant immediately, each arbitered access incurs two
// extra clock cycles due to the arbitration protocol", and the batching
// parameter M ("a task has to make its Request=0 between each M accesses")
// trades solo overhead against peer waiting time.  The table sweeps M for a
// task issuing 16 accesses, solo (grants immediate) and against a
// contending peer.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "core/insertion.hpp"
#include "obs/bench_report.hpp"
#include "obs/trace.hpp"
#include "rcsim/system_sim.hpp"
#include "support/table.hpp"

namespace {

using namespace rcarb;

struct Workload {
  tg::TaskGraph graph{"fig8"};
  core::Binding binding;

  explicit Workload(int accesses) {
    graph.add_segment("s0", 128, 32);
    graph.add_segment("s1", 128, 32);
    for (int t = 0; t < 2; ++t) {
      tg::Program p;
      p.load_imm(0, 0);
      for (int i = 0; i < accesses; ++i) p.store(t, 0, 0, i % 32);
      p.halt();
      graph.add_task("t" + std::to_string(t), p, 10);
    }
    binding.task_to_pe = {0, 1};
    binding.segment_to_bank = {0, 0};
    binding.num_banks = 1;
    binding.bank_names = {"MEM"};
  }
};

constexpr int kAccesses = 16;

std::uint64_t run_cycles(const Workload& w, int batch_m,
                         const std::vector<tg::TaskId>& tasks) {
  core::InsertionOptions options;
  options.batch_m = batch_m;
  const auto ins = core::insert_arbitration(w.graph, w.binding, options);
  rcsim::SystemSimulator sim(ins.graph, w.binding, ins.plan);
  return sim.run(tasks).cycles;
}

std::uint64_t max_wait(const Workload& w, int batch_m) {
  core::InsertionOptions options;
  options.batch_m = batch_m;
  const auto ins = core::insert_arbitration(w.graph, w.binding, options);
  rcsim::SystemSimulator sim(ins.graph, w.binding, ins.plan);
  const auto r = sim.run({0, 1});
  std::uint64_t worst = 0;
  for (const auto& arb : r.arbiters) worst = std::max(worst, arb.max_wait);
  return worst;
}

// Records one contended M=4 run into a Chrome trace_event file so the
// protocol timeline (wait / hold spans per arbiter port) can be inspected
// in Perfetto or chrome://tracing.
void export_trace(const Workload& w) {
  core::InsertionOptions options;
  options.batch_m = 4;
  const auto ins = core::insert_arbitration(w.graph, w.binding, options);
  rcsim::SimOptions so;
  obs::TraceBuffer buf;
  so.trace_sink = &buf;
  rcsim::SystemSimulator sim(ins.graph, w.binding, ins.plan, so);
  sim.run({0, 1});

  const char* dir = std::getenv("RCARB_BENCH_DIR");
  const std::string path =
      (dir != nullptr && *dir != '\0' ? std::string(dir) + "/" : std::string())
      + "TRACE_fig8_overhead.json";
  std::ofstream out(path);
  if (!out) return;
  obs::write_chrome_trace(out, buf.events(), sim.trace_meta());
  std::printf("chrome trace: %s (%zu events)\n", path.c_str(),
              buf.events().size());
}

void print_fig8(rcarb::obs::BenchReporter& rep) {
  // Unarbitrated baseline: 1 + kAccesses cycles.
  Workload w(kAccesses);
  const std::uint64_t solo_base = 1 + kAccesses;

  Table table(
      "Fig. 8 — task modification overhead, 16 arbitered accesses "
      "[paper: +2 cycles per burst when the grant is immediate]");
  table.set_header({"M", "bursts", "solo cycles", "solo overhead",
                    "overhead/burst", "2-task cycles", "peer max wait"});
  for (int m : {1, 2, 4, 8, 16}) {
    const std::uint64_t solo = run_cycles(w, m, {0});
    const int bursts = (kAccesses + m - 1) / m;
    const std::uint64_t contended = run_cycles(w, m, {0, 1});
    const std::string suffix = "_m" + std::to_string(m);
    rep.metric("solo_overhead" + suffix,
               static_cast<double>(solo - solo_base), "cycles");
    rep.metric("peer_max_wait" + suffix,
               static_cast<double>(max_wait(w, m)), "cycles");
    table.add_row({std::to_string(m), std::to_string(bursts),
                   std::to_string(solo),
                   "+" + std::to_string(solo - solo_base),
                   fmt_fixed(static_cast<double>(solo - solo_base) /
                                 static_cast<double>(bursts),
                             1),
                   std::to_string(contended), std::to_string(max_wait(w, m))});
  }
  table.print();
  std::puts(
      "small M: more protocol overhead but short peer waits; large M: lean\n"
      "solo execution but a peer can wait a whole burst — exactly the\n"
      "trade the paper's M parameter controls (Sec. 4.3 / future work).\n");
}

void BM_RewriteAndSimulate(benchmark::State& state) {
  Workload w(kAccesses);
  const int m = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_cycles(w, m, {0, 1}));
  }
}
BENCHMARK(BM_RewriteAndSimulate)->Arg(1)->Arg(2)->Arg(8);

}  // namespace

int main(int argc, char** argv) {
  rcarb::obs::BenchReporter rep("fig8_overhead");
  print_fig8(rep);
  export_trace(Workload(kAccesses));
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  const std::string path = rep.write();
  if (path.empty()) {
    std::fputs("bench report write failed\n", stderr);
    return 1;
  }
  std::printf("bench report: %s\n", path.c_str());
  return 0;
}
