// Encoding & generation-mode ablation (corollary of Figs. 6/7).
//
// Two axes the paper's generator exposes:
//   * FSM encoding — one-hot vs compact (vs gray, added here): register
//     count against next-state logic;
//   * RTL generation — the factored rotating-priority-chain structure
//     (what multi-level commercial synthesis derives; our generator's
//     default) vs raw two-level synthesis of the Fig. 5 case statement
//     (our behavioral flow, quantifying what the factoring is worth).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "core/generator.hpp"
#include "obs/bench_report.hpp"
#include "support/parallel.hpp"
#include "support/table.hpp"

namespace {

using namespace rcarb;
using core::GeneratorMode;
using synth::Encoding;
using synth::FlowKind;

/// Characterization numbers one sweep cell contributes (the generated
/// netlists themselves are discarded — only the table/report numbers
/// travel back to the reducer).
struct EncodingCell {
  core::ArbiterCharacteristics onehot, compact, gray;
};

void print_encodings(obs::BenchReporter& rep) {
  Table table("encoding ablation — area and speed by state encoding "
              "(structural generation, express-like mapping)");
  table.set_header({"N", "one-hot CLBs", "compact CLBs", "gray CLBs",
                    "one-hot MHz", "compact MHz", "gray MHz",
                    "FFs 1-hot/dense"});
  const std::vector<int> sizes = {2, 4, 6, 8, 10};
  // Each cell synthesizes three arbiters from scratch — independent work,
  // mapped across the pool; rows and report metrics land in N order.
  ordered_map_reduce<EncodingCell>(
      sizes.size(),
      [&](std::size_t i) {
        const int n = sizes[i];
        EncodingCell cell;
        cell.onehot = core::generate_round_robin_cached(
                          n, FlowKind::kExpressLike, Encoding::kOneHot)
                          .chars;
        cell.compact = core::generate_round_robin_cached(
                           n, FlowKind::kExpressLike, Encoding::kCompact)
                           .chars;
        cell.gray = core::generate_round_robin_cached(
                        n, FlowKind::kExpressLike, Encoding::kGray)
                        .chars;
        return cell;
      },
      [&](std::size_t i, EncodingCell cell) {
        const int n = sizes[i];
        table.add_row({std::to_string(n), std::to_string(cell.onehot.clbs),
                       std::to_string(cell.compact.clbs),
                       std::to_string(cell.gray.clbs),
                       fmt_fixed(cell.onehot.fmax_mhz, 1),
                       fmt_fixed(cell.compact.fmax_mhz, 1),
                       fmt_fixed(cell.gray.fmax_mhz, 1),
                       std::to_string(cell.onehot.ffs) + "/" +
                           std::to_string(cell.compact.ffs)});
        if (n == 10) {
          rep.metric("onehot_clbs_n10",
                     static_cast<double>(cell.onehot.clbs), "clbs");
          rep.metric("compact_clbs_n10",
                     static_cast<double>(cell.compact.clbs), "clbs");
          rep.metric("gray_clbs_n10", static_cast<double>(cell.gray.clbs),
                     "clbs");
        }
      });
  table.print();
  std::puts(
      "one-hot spends registers to keep the next-state logic shallow; the\n"
      "dense codes save flip-flops but pay in decode logic and speed — the\n"
      "same trade Figs. 6/7 show between the Express series.\n");

  Table modes("generation ablation — factored chain vs two-level FSM "
              "synthesis (one-hot, express-like)");
  modes.set_header({"N", "structural CLBs", "behavioral CLBs", "ratio",
                    "structural MHz", "behavioral MHz"});
  struct ModeCell {
    core::ArbiterCharacteristics structural, behavioral;
  };
  ordered_map_reduce<ModeCell>(
      sizes.size(),
      [&](std::size_t i) {
        const int n = sizes[i];
        ModeCell cell;
        cell.structural =
            core::generate_round_robin_cached(n, FlowKind::kExpressLike,
                                              Encoding::kOneHot,
                                              timing::xc4000e_speed3(),
                                              GeneratorMode::kStructural)
                .chars;
        cell.behavioral =
            core::generate_round_robin_cached(n, FlowKind::kExpressLike,
                                              Encoding::kOneHot,
                                              timing::xc4000e_speed3(),
                                              GeneratorMode::kBehavioral)
                .chars;
        return cell;
      },
      [&](std::size_t i, ModeCell cell) {
        const int n = sizes[i];
        if (n == 10) {
          rep.metric("structural_clbs_n10",
                     static_cast<double>(cell.structural.clbs), "clbs");
          rep.metric("behavioral_clbs_n10",
                     static_cast<double>(cell.behavioral.clbs), "clbs");
        }
        modes.add_row(
            {std::to_string(n), std::to_string(cell.structural.clbs),
             std::to_string(cell.behavioral.clbs),
             fmt_fixed(static_cast<double>(cell.behavioral.clbs) /
                           static_cast<double>(std::max<std::size_t>(
                               1, cell.structural.clbs)),
                       1) +
                 "x",
             fmt_fixed(cell.structural.fmax_mhz, 1),
             fmt_fixed(cell.behavioral.fmax_mhz, 1)});
      });
  modes.print();
  std::puts(
      "the factored rotating-priority chain is what keeps the paper's\n"
      "arbiters in the tens of CLBs; a plain two-level implementation of\n"
      "the Fig. 5 case statement costs several times the area.  Both are\n"
      "formally equivalent to the behavioral model (see the test suite).\n");
}

void BM_StructuralVsBehavioral(benchmark::State& state) {
  const auto mode = state.range(0) == 0 ? GeneratorMode::kStructural
                                        : GeneratorMode::kBehavioral;
  for (auto _ : state) {
    // Deliberately uncached: this benchmark measures synthesis cost.
    auto g = core::generate_round_robin(6, FlowKind::kExpressLike,
                                        Encoding::kOneHot,
                                        timing::xc4000e_speed3(), mode);
    benchmark::DoNotOptimize(g.chars.clbs);
  }
}
BENCHMARK(BM_StructuralVsBehavioral)->Arg(0)->Arg(1);

}  // namespace

int main(int argc, char** argv) {
  rcarb::obs::BenchReporter rep("encoding_ablation");
  print_encodings(rep);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  const std::string path = rep.write();
  if (path.empty()) {
    std::fputs("bench report write failed\n", stderr);
    return 1;
  }
  std::printf("bench report: %s\n", path.c_str());
  return 0;
}
