// Encoding & generation-mode ablation (corollary of Figs. 6/7).
//
// Two axes the paper's generator exposes:
//   * FSM encoding — one-hot vs compact (vs gray, added here): register
//     count against next-state logic;
//   * RTL generation — the factored rotating-priority-chain structure
//     (what multi-level commercial synthesis derives; our generator's
//     default) vs raw two-level synthesis of the Fig. 5 case statement
//     (our behavioral flow, quantifying what the factoring is worth).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/generator.hpp"
#include "obs/bench_report.hpp"
#include "support/table.hpp"

namespace {

using namespace rcarb;
using core::GeneratorMode;
using synth::Encoding;
using synth::FlowKind;

void print_encodings(obs::BenchReporter& rep) {
  Table table("encoding ablation — area and speed by state encoding "
              "(structural generation, express-like mapping)");
  table.set_header({"N", "one-hot CLBs", "compact CLBs", "gray CLBs",
                    "one-hot MHz", "compact MHz", "gray MHz",
                    "FFs 1-hot/dense"});
  for (int n = 2; n <= 10; n += 2) {
    const auto oh = core::generate_round_robin(n, FlowKind::kExpressLike,
                                               Encoding::kOneHot);
    const auto cp = core::generate_round_robin(n, FlowKind::kExpressLike,
                                               Encoding::kCompact);
    const auto gr = core::generate_round_robin(n, FlowKind::kExpressLike,
                                               Encoding::kGray);
    table.add_row({std::to_string(n), std::to_string(oh.chars.clbs),
                   std::to_string(cp.chars.clbs),
                   std::to_string(gr.chars.clbs),
                   fmt_fixed(oh.chars.fmax_mhz, 1),
                   fmt_fixed(cp.chars.fmax_mhz, 1),
                   fmt_fixed(gr.chars.fmax_mhz, 1),
                   std::to_string(oh.chars.ffs) + "/" +
                       std::to_string(cp.chars.ffs)});
    if (n == 10) {
      rep.metric("onehot_clbs_n10", static_cast<double>(oh.chars.clbs),
                 "clbs");
      rep.metric("compact_clbs_n10", static_cast<double>(cp.chars.clbs),
                 "clbs");
      rep.metric("gray_clbs_n10", static_cast<double>(gr.chars.clbs), "clbs");
    }
  }
  table.print();
  std::puts(
      "one-hot spends registers to keep the next-state logic shallow; the\n"
      "dense codes save flip-flops but pay in decode logic and speed — the\n"
      "same trade Figs. 6/7 show between the Express series.\n");

  Table modes("generation ablation — factored chain vs two-level FSM "
              "synthesis (one-hot, express-like)");
  modes.set_header({"N", "structural CLBs", "behavioral CLBs", "ratio",
                    "structural MHz", "behavioral MHz"});
  for (int n = 2; n <= 10; n += 2) {
    const auto s = core::generate_round_robin(
        n, FlowKind::kExpressLike, Encoding::kOneHot,
        timing::xc4000e_speed3(), GeneratorMode::kStructural);
    const auto b = core::generate_round_robin(
        n, FlowKind::kExpressLike, Encoding::kOneHot,
        timing::xc4000e_speed3(), GeneratorMode::kBehavioral);
    if (n == 10) {
      rep.metric("structural_clbs_n10", static_cast<double>(s.chars.clbs),
                 "clbs");
      rep.metric("behavioral_clbs_n10", static_cast<double>(b.chars.clbs),
                 "clbs");
    }
    modes.add_row(
        {std::to_string(n), std::to_string(s.chars.clbs),
         std::to_string(b.chars.clbs),
         fmt_fixed(static_cast<double>(b.chars.clbs) /
                       static_cast<double>(std::max<std::size_t>(1, s.chars.clbs)),
                   1) +
             "x",
         fmt_fixed(s.chars.fmax_mhz, 1), fmt_fixed(b.chars.fmax_mhz, 1)});
  }
  modes.print();
  std::puts(
      "the factored rotating-priority chain is what keeps the paper's\n"
      "arbiters in the tens of CLBs; a plain two-level implementation of\n"
      "the Fig. 5 case statement costs several times the area.  Both are\n"
      "formally equivalent to the behavioral model (see the test suite).\n");
}

void BM_StructuralVsBehavioral(benchmark::State& state) {
  const auto mode = state.range(0) == 0 ? GeneratorMode::kStructural
                                        : GeneratorMode::kBehavioral;
  for (auto _ : state) {
    auto g = core::generate_round_robin(6, FlowKind::kExpressLike,
                                        Encoding::kOneHot,
                                        timing::xc4000e_speed3(), mode);
    benchmark::DoNotOptimize(g.chars.clbs);
  }
}
BENCHMARK(BM_StructuralVsBehavioral)->Arg(0)->Arg(1);

}  // namespace

int main(int argc, char** argv) {
  rcarb::obs::BenchReporter rep("encoding_ablation");
  print_encodings(rep);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  const std::string path = rep.write();
  if (path.empty()) {
    std::fputs("bench report write failed\n", stderr);
    return 1;
  }
  std::printf("bench report: %s\n", path.c_str());
  return 0;
}
