// Graceful-degradation campaign: permanent-fault kind x recovery mode over
// a two-bank / two-physical-channel workload.  The claim under test is the
// degradation contract: with the supervisor on (self-checking arbiters +
// quarantine + online remap) every permanent fault is classified within
// K*W cycles, its load lands on a survivor, and the run finishes with
// availability strictly above the stall-only baseline — which wedges (but
// always *attributed*: the dead resource is named in the diagnostics).
// Cells run in parallel across $RCARB_JOBS workers and the report is
// reduced in cell-index order, so the output is byte-identical at any job
// count (the CI determinism check diffs RCARB_JOBS=1 against 4).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/insertion.hpp"
#include "core/selfcheck.hpp"
#include "fault/fault.hpp"
#include "obs/bench_report.hpp"
#include "rcsim/system_sim.hpp"
#include "support/parallel.hpp"
#include "support/table.hpp"

namespace {

using namespace rcarb;
using core::CheckMode;

/// Two banks, two physical channels, twelve tasks: four bank hammerers
/// (two per bank), four producers streaming over four logical channels
/// merged pairwise onto the two physical channels, and four consumers
/// storing what they received — every resource class the supervisor can
/// quarantine is present and busy when the fault lands.
struct Workload {
  tg::TaskGraph g{"degradation"};
  core::Binding binding;
  std::vector<tg::TaskId> tasks;

  Workload() {
    g.add_segment("s0", 256, 32);
    g.add_segment("s1", 256, 32);
    for (int c = 0; c < 4; ++c)
      g.add_segment("o" + std::to_string(c), 64, 8);

    for (int t = 0; t < 4; ++t) {  // hammerers: 0,1 -> s0; 2,3 -> s1
      tg::Program p;
      p.load_imm(0, 0);
      for (int k = 0; k < 24; ++k) {
        p.load_imm(1, 100 * (t + 1) + k)
            .store(t / 2, 0, 1, (t % 2) * 16 + (k % 16))
            .compute(1);
      }
      p.halt();
      tasks.push_back(g.add_task("hammer" + std::to_string(t), p, 1));
    }
    std::vector<tg::TaskId> prods, conss;
    for (int c = 0; c < 4; ++c) {
      tg::Program prod;
      for (int k = 0; k < 8; ++k)
        prod.load_imm(1, 1000 * (c + 1) + k).send(c, 1).compute(1);
      prod.halt();
      tg::Program cons;
      cons.load_imm(0, 0);
      for (int k = 0; k < 8; ++k) cons.recv(1, c).store(2 + c, 0, 1, k);
      cons.halt();
      prods.push_back(g.add_task("prod" + std::to_string(c), prod, 1));
      conss.push_back(g.add_task("cons" + std::to_string(c), cons, 1));
    }
    for (std::size_t c = 0; c < 4; ++c)
      g.add_channel("ch" + std::to_string(c), 16, prods[c], conss[c]);
    tasks.insert(tasks.end(), prods.begin(), prods.end());
    tasks.insert(tasks.end(), conss.begin(), conss.end());

    binding.task_to_pe.resize(g.num_tasks());
    for (std::size_t i = 0; i < binding.task_to_pe.size(); ++i)
      binding.task_to_pe[i] = static_cast<int>(i);
    // Consumer output segments alternate banks so both bank arbiters carry
    // four ports.
    binding.segment_to_bank = {0, 1, 0, 1, 0, 1};
    binding.num_banks = 2;
    binding.bank_names = {"B0", "B1"};
    binding.channel_to_phys = {0, 0, 1, 1};
    binding.num_phys_channels = 2;
    binding.phys_channel_names = {"X0", "X1"};
  }
};

enum class Mode { kStallOnly, kDmr, kTmr };

const char* to_string(Mode m) {
  switch (m) {
    case Mode::kStallOnly: return "stall-only";
    case Mode::kDmr: return "degrade+dmr";
    case Mode::kTmr: return "degrade+tmr";
  }
  return "?";
}

constexpr std::uint64_t kFaultCycle = 40;
constexpr int kStrikes = 3;
constexpr std::uint64_t kStrikeWindow = 64;

rcsim::SimOptions options_for(Mode mode) {
  rcsim::SimOptions so;
  so.strict = false;
  so.diag_detail = false;
  so.no_progress_window = 600;
  if (mode != Mode::kStallOnly) {
    so.self_check = mode == Mode::kDmr ? CheckMode::kDuplicate
                                       : CheckMode::kTmr;
    so.degrade.enabled = true;
    so.degrade.strikes = kStrikes;
    so.degrade.strike_window = kStrikeWindow;
    so.degrade.drain_timeout = 32;
    so.degrade.reconfig_base_cycles = 8;
    so.degrade.reconfig_cycles_per_clb = 1;
  }
  return so;
}

fault::FaultEvent fault_for(fault::FaultKind kind) {
  fault::FaultEvent e;
  e.kind = kind;
  e.cycle = kFaultCycle;
  switch (kind) {
    case fault::FaultKind::kBankFailure: e.bank = 1; break;
    case fault::FaultKind::kPermanentStuckChannel: e.channel = 0; break;
    default: e.arbiter = 0; break;  // kArbiterLatchup
  }
  return e;
}

struct CellStats {
  rcsim::SimResult sim;
  bool survived = false;
  bool attributed = false;
  double availability = 0.0;
  double mttr = 0.0;        // mean repair cycles over quarantine events
  double throughput = 0.0;  // retired ops per cycle
};

CellStats run_cell(const Workload& w, fault::FaultKind kind, Mode mode,
                   bool inject) {
  const core::InsertionResult ins =
      core::insert_arbitration(w.g, w.binding, {});
  rcsim::SimOptions so = options_for(mode);
  if (inject) so.faults = {fault_for(kind)};
  rcsim::SystemSimulator sim(ins.graph, w.binding, ins.plan, so);

  CellStats cell;
  cell.sim = sim.run(w.tasks);
  const auto& r = cell.sim;
  bool all_finished = true;
  std::uint64_t ops = 0;
  for (const tg::TaskId t : w.tasks) {
    const auto& ts = r.tasks[static_cast<std::size_t>(t)];
    all_finished = all_finished && ts.ran && ts.finish_cycle > 0;
    ops += ts.ops_retired;
  }
  cell.survived = !r.deadlocked && all_finished;
  using rcsim::DiagKind;
  cell.attributed = r.count(DiagKind::kDeadlock) +
                        r.count(DiagKind::kNoProgress) +
                        r.count(DiagKind::kCapacityExhausted) >
                    0;
  cell.availability = r.cycles == 0 ? 0.0
                                    : static_cast<double>(r.serving_cycles) /
                                          static_cast<double>(r.cycles);
  if (!r.quarantine_events.empty()) {
    double sum = 0.0;
    for (const auto& q : r.quarantine_events)
      sum += static_cast<double>(q.repair_cycles());
    cell.mttr = sum / static_cast<double>(r.quarantine_events.size());
  }
  cell.throughput = r.cycles == 0 ? 0.0
                                  : static_cast<double>(ops) /
                                        static_cast<double>(r.cycles);
  return cell;
}

void print_campaign(obs::BenchReporter& rep) {
  const Workload w;
  // Fault-free reference (stall-only options, nothing injected): the
  // denominator of every cell's throughput-retention figure.
  const CellStats ref =
      run_cell(w, fault::FaultKind::kBankFailure, Mode::kStallOnly, false);

  Table table(
      "Graceful degradation — permanent fault x recovery mode (fault at "
      "cycle 40, K=3 strikes in W=64)");
  table.set_header({"fault", "mode", "survived", "cycles", "avail",
                    "MTTR", "tput-retention", "quar/remap", "verdict"});

  struct CellSpec {
    fault::FaultKind kind;
    Mode mode;
  };
  std::vector<CellSpec> cells;
  for (const fault::FaultKind kind : fault::permanent_fault_kinds())
    for (const Mode mode : {Mode::kStallOnly, Mode::kDmr, Mode::kTmr})
      cells.push_back({kind, mode});

  int degrade_cells = 0, degrade_ok = 0;
  int stall_cells = 0, stall_attributed = 0;
  double worst_degrade_avail = 1.0, best_stall_avail = 0.0;
  double mttr_sum = 0.0;
  int mttr_cells = 0;
  ordered_map_reduce<CellStats>(
      cells.size(),
      [&](std::size_t i) {
        return run_cell(w, cells[i].kind, cells[i].mode, true);
      },
      [&](std::size_t i, CellStats cell) {
        const CellSpec& c = cells[i];
        const auto& r = cell.sim;
        const double retention =
            ref.throughput == 0.0 ? 0.0 : cell.throughput / ref.throughput;
        std::string verdict;
        if (c.mode == Mode::kStallOnly) {
          ++stall_cells;
          if (!cell.survived && cell.attributed) ++stall_attributed;
          best_stall_avail = std::max(best_stall_avail, cell.availability);
          verdict = cell.survived  ? "limps through"
                    : cell.attributed ? "dies, attributed"
                                      : "SILENT HANG";
        } else {
          ++degrade_cells;
          const bool ok = cell.survived && r.quarantined == 1 &&
                          r.remaps == 1 && r.protocol_violations == 0;
          if (ok) ++degrade_ok;
          worst_degrade_avail =
              std::min(worst_degrade_avail, cell.availability);
          mttr_sum += cell.mttr;
          ++mttr_cells;
          verdict = ok ? "quarantined+remapped" : "DEGRADE FAILURE";
        }
        table.add_row(
            {fault::to_string(c.kind), to_string(c.mode),
             cell.survived ? "yes" : "NO", std::to_string(r.cycles),
             fmt_fixed(cell.availability, 3), fmt_fixed(cell.mttr, 1),
             fmt_fixed(retention, 3),
             std::to_string(r.quarantined) + "/" + std::to_string(r.remaps),
             verdict});
      });

  rep.metric("campaign_cells", static_cast<double>(cells.size()), "cells");
  rep.metric("degrade_cells", degrade_cells, "cells");
  rep.metric("degrade_recovered", degrade_ok, "cells");
  rep.metric("stall_only_cells", stall_cells, "cells");
  rep.metric("stall_only_attributed", stall_attributed, "cells");
  rep.metric("worst_degrade_availability", worst_degrade_avail, "ratio");
  rep.metric("best_stall_only_availability", best_stall_avail, "ratio");
  rep.metric("mean_mttr_cycles",
             mttr_cells == 0 ? 0.0 : mttr_sum / mttr_cells, "cycles");
  rep.metric("faultfree_throughput", ref.throughput, "ops/cycle");
  rep.note("jobs", "RCARB_JOBS-controlled; output is identical at any job "
                   "count");
  table.print();
  std::printf(
      "degrade modes: %d/%d cells quarantined, remapped and finished clean\n"
      "stall-only: %d/%d dead cells attributed in the diagnostics\n"
      "availability: worst degraded %.3f vs best stall-only %.3f\n\n",
      degrade_ok, degrade_cells, stall_attributed, stall_cells,
      worst_degrade_avail, best_stall_avail);
}

void BM_DegradationCell(benchmark::State& state) {
  const Workload w;
  const Mode mode = state.range(0) == 0 ? Mode::kStallOnly : Mode::kTmr;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        run_cell(w, fault::FaultKind::kBankFailure, mode, true));
  }
}
BENCHMARK(BM_DegradationCell)->Arg(0)->Arg(1);

void BM_SelfCheckStep(benchmark::State& state) {
  core::SelfCheckingArbiter arb(
      8, state.range(0) == 0 ? CheckMode::kDuplicate : CheckMode::kTmr);
  std::uint64_t req = 0x5a;
  for (auto _ : state) {
    benchmark::DoNotOptimize(arb.step(req));
    req = (req * 0x9e3779b97f4a7c15ull) >> 56;
  }
}
BENCHMARK(BM_SelfCheckStep)->Arg(0)->Arg(1);

}  // namespace

int main(int argc, char** argv) {
  rcarb::obs::BenchReporter rep("degradation");
  print_campaign(rep);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  const std::string path = rep.write();
  if (path.empty()) {
    std::fputs("bench report write failed\n", stderr);
    return 1;
  }
  std::printf("bench report: %s\n", path.c_str());
  return 0;
}
