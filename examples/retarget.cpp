// Retargeting: the paper's core promise is that "without any modifications
// to the input taskgraph, FFT can be synthesized for different
// architectures using the same set of partitioning/synthesis tools".  This
// example runs the identical FFT taskgraph through the automatic flow on
// three boards and prints what changes — partitions, arbiters, cycles —
// while the design source stays untouched and the output stays bit-exact.
//
//   $ ./retarget
#include <cstdio>

#include "board/board.hpp"
#include "fft/fft_design.hpp"
#include "flow/sparcs_flow.hpp"

int main() {
  using namespace rcarb;

  const fft::FftDesign design = fft::build_fft_design();

  fft::Block block{};
  int v = 1;
  for (auto& row : block)
    for (auto& px : row) px = (v++ * 13) % 41 - 20;
  const fft::BlockSpectrum want = fft::fft2d_4x4(block);

  for (const board::Board& board :
       {board::wildforce(), board::mesh8()}) {
    flow::FlowOptions options;
    for (std::size_t r = 0; r < 4; ++r)
      options.preload.emplace_back(
          design.mi[r],
          std::vector<std::int64_t>(block[r].begin(), block[r].end()));

    const flow::FlowReport report = run_flow(design.graph, board, options);

    bool exact = true;
    for (std::size_t j = 0; j < 4; ++j) {
      const auto& words = report.final_memory[design.mo[j]];
      for (std::size_t k = 0; k < 4; ++k)
        exact = exact && words[k] == want[j][k].re &&
                words[4 + k] == want[j][k].im;
    }

    std::printf("=== board: %s (%zu PEs, %zu CLBs total) ===\n",
                board.name().c_str(), board.num_pes(),
                board.total_clb_capacity());
    std::printf("%s", report.summary().c_str());
    std::printf("output: %s\n\n", exact ? "bit-exact" : "MISMATCH");
  }

  std::printf(
      "same taskgraph, zero design edits: the arbitration layer absorbs the\n"
      "architecture differences — fewer partitions on the big board, more\n"
      "arbitration pressure on the small one.\n");
  return 0;
}
