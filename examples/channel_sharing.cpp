// Channel sharing (paper Secs. 2.2, 4.3 and Table 1): two logical channels
// merged onto one physical inter-FPGA channel.  The example shows the whole
// path: the channel mapper running out of pins and merging, the insertion
// pass arbitrating the two source tasks, and the receiver-side registers
// keeping an early transfer alive until its consumer wants it.
//
//   $ ./channel_sharing
#include <cstdio>

#include "board/board.hpp"
#include "core/insertion.hpp"
#include "partition/binding.hpp"
#include "partition/channel_map.hpp"
#include "partition/memory_map.hpp"
#include "partition/spatial.hpp"
#include "rcsim/system_sim.hpp"

int main() {
  using namespace rcarb;

  // Three producer->consumer pairs crossing mini2's single 16-bit link,
  // each wanting 8 wires: 24 > 16, so someone has to share.
  tg::TaskGraph graph("sharing");
  const auto out = graph.add_segment("out", 64, 8);
  std::vector<tg::TaskId> tasks;
  for (int i = 0; i < 3; ++i) {
    tg::Program producer;
    producer.compute(i * 2).load_imm(0, 100 + i).send(i, 0).halt();
    tg::Program consumer;
    consumer.compute(10 - i)
        .recv(1, i)
        .load_imm(0, 0)
        .store(static_cast<int>(out), 0, 1, i)
        .halt();
    const auto p = graph.add_task("prod" + std::to_string(i), producer, 60);
    const auto c = graph.add_task("cons" + std::to_string(i), consumer, 60);
    graph.add_channel("c" + std::to_string(i), 8, p, c);
    tasks.push_back(p);
    tasks.push_back(c);
  }

  const board::Board board = board::mini2();
  // Producers on PE1, consumers on PE2 (forced by the fixed placement the
  // spatial partitioner finds for this symmetric case anyway).
  std::vector<int> pes(graph.num_tasks());
  for (std::size_t t = 0; t < graph.num_tasks(); ++t)
    pes[t] = t % 2 == 0 ? 0 : 1;

  const part::ChannelMapResult channels =
      part::map_channels(graph, tasks, board, pes);
  std::printf("channel mapping on %s (16-bit link):\n", board.name().c_str());
  for (std::size_t ph = 0; ph < channels.phys.size(); ++ph) {
    const auto& phys = channels.phys[ph];
    std::printf("  phys[%zu] %-22s width=%d  carries %zu logical channel(s)\n",
                ph, phys.name.c_str(), phys.width_bits, phys.logical.size());
  }
  std::printf("  merged logical channels: %zu\n\n", channels.merged_channels);

  part::SpatialResult spatial;
  spatial.pe_of_task = pes;
  spatial.pe_clbs = {180, 180};
  part::MemoryMapResult memory;
  memory.bank_of_segment.assign(graph.num_segments(), 0);
  memory.bank_free_bytes = {16 * 1024, 16 * 1024};
  const core::Binding binding =
      part::make_binding(graph, board, spatial, memory, channels);

  const core::InsertionResult ins =
      core::insert_arbitration(graph, binding, {});
  std::printf("arbiters inserted:\n");
  for (const auto& a : ins.plan.arbiters)
    std::printf("  %zu-input on %s\n", a.ports.size(),
                a.resource_name.c_str());
  std::printf("line merges planned: %zu (tristate buses, OR-ed enables)\n\n",
              ins.plan.line_merges.size());

  rcsim::SystemSimulator sim(ins.graph, binding, ins.plan);
  const rcsim::SimResult result = sim.run(tasks);
  std::printf("simulation: %llu cycles, %llu conflicts, %llu clobbered reads\n",
              static_cast<unsigned long long>(result.cycles),
              static_cast<unsigned long long>(result.channel_conflicts),
              static_cast<unsigned long long>(result.clobbered_reads));
  for (int i = 0; i < 3; ++i)
    std::printf("  consumer %d received %lld (expected %d)\n", i,
                static_cast<long long>(sim.segment_data(out)[i]), 100 + i);
  std::printf(
      "\nall transfers arrive intact over the shared wires: the receiving-\n"
      "end registers (Fig. 3) plus the request/grant protocol do the work.\n");
  return 0;
}
