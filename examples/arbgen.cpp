// arbgen — the paper's arbiter generator as a command-line tool.
//
// "An arbiter generator was implemented.  It takes the number of tasks to
// be arbitrated (N) as input and it generates a corresponding VHDL file.
// The generator also has the option to produce different encoding schemes
// for the FSM."  (Sec. 4.2)
//
//   $ ./arbgen 6                 # one-hot (default), VHDL on stdout
//   $ ./arbgen 6 compact         # dense binary encoding
//   $ ./arbgen 6 gray            # gray encoding
//   $ ./arbgen 10 one-hot > arb10.vhd
//
// Characterization (CLBs / Fmax under the XC4000e-3 model) goes to stderr
// so the VHDL can be redirected cleanly.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/generator.hpp"
#include "core/vhdl.hpp"

int main(int argc, char** argv) {
  using namespace rcarb;

  if (argc < 2 || argc > 3) {
    std::fprintf(stderr,
                 "usage: %s <N> [one-hot|compact|gray]\n"
                 "  generates an N-input round-robin arbiter (2 <= N <= 20)\n",
                 argv[0]);
    return 2;
  }
  const int n = std::atoi(argv[1]);
  if (n < 2 || n > 20) {
    std::fprintf(stderr, "error: N must be in [2, 20], got '%s'\n", argv[1]);
    return 2;
  }
  synth::Encoding encoding = synth::Encoding::kOneHot;
  if (argc == 3) {
    const std::string req = argv[2];
    if (req == "one-hot") {
      encoding = synth::Encoding::kOneHot;
    } else if (req == "compact") {
      encoding = synth::Encoding::kCompact;
    } else if (req == "gray") {
      encoding = synth::Encoding::kGray;
    } else {
      std::fprintf(stderr, "error: unknown encoding '%s'\n", argv[2]);
      return 2;
    }
  }

  const std::string vhdl = core::emit_round_robin_vhdl(n, encoding);
  std::fwrite(vhdl.data(), 1, vhdl.size(), stdout);

  const core::GeneratedArbiter g = core::generate_round_robin(
      n, synth::FlowKind::kExpressLike, encoding);
  std::fprintf(stderr,
               "-- %d-input round-robin arbiter, %s encoding\n"
               "-- pre-characterization (XC4000e-3 model): %zu CLBs "
               "(%zu LUTs, %zu FFs), Fmax %.1f MHz\n"
               "-- protocol cost: +%d cycles per arbitered burst\n",
               n, synth::to_string(encoding), g.chars.clbs, g.chars.luts,
               g.chars.ffs, g.chars.fmax_mhz, g.chars.overhead_cycles);
  return 0;
}
