// Quickstart: generate an arbiter, inspect its characteristics, emit the
// VHDL the paper's generator produced, and watch the Fig. 5 protocol work
// cycle by cycle on the synthesized netlist.
//
//   $ ./quickstart
#include <cstdio>
#include <vector>

#include "core/generator.hpp"
#include "core/policy.hpp"
#include "core/vhdl.hpp"
#include "netlist/simulator.hpp"

int main() {
  using namespace rcarb;

  // 1. Generate a 4-input round-robin arbiter, characterized for the
  //    XC4000e like the paper's pre-characterization step.
  const core::GeneratedArbiter arb = core::generate_round_robin(
      4, synth::FlowKind::kExpressLike, synth::Encoding::kOneHot);
  std::printf("4-input round-robin arbiter:\n");
  std::printf("  area    : %zu CLBs (%zu LUTs, %zu FFs)\n", arb.chars.clbs,
              arb.chars.luts, arb.chars.ffs);
  std::printf("  clock   : %.1f MHz max (XC4000e-3 model)\n",
              arb.chars.fmax_mhz);
  std::printf("  protocol: +%d cycles per arbitered burst\n\n",
              arb.chars.overhead_cycles);

  // 2. The VHDL artifact (first lines).
  const std::string vhdl =
      core::emit_round_robin_vhdl(4, synth::Encoding::kOneHot);
  std::printf("generated VHDL (%zu bytes), first lines:\n", vhdl.size());
  std::size_t shown = 0, lines = 0;
  while (lines < 12 && shown < vhdl.size()) {
    const std::size_t eol = vhdl.find('\n', shown);
    std::printf("  | %s\n", vhdl.substr(shown, eol - shown).c_str());
    shown = eol + 1;
    ++lines;
  }
  std::printf("  | ...\n\n");

  // 3. Drive the synthesized netlist: three tasks fight for one resource.
  netlist::Simulator sim(arb.synth.netlist);
  core::RoundRobinArbiter reference(4);
  // Resolve port names once; the cycle loop works on NetIds.
  std::vector<netlist::NetId> req_net, grant_net;
  for (int i = 0; i < 4; ++i) {
    req_net.push_back(*arb.synth.netlist.find_net("req" + std::to_string(i)));
    grant_net.push_back(
        *arb.synth.netlist.find_net("grant" + std::to_string(i)));
  }
  std::printf("cycle-by-cycle protocol (requests -> grant):\n");
  const std::uint64_t traffic[] = {0b0000, 0b0110, 0b0110, 0b1111,
                                   0b1011, 0b1001, 0b0000, 0b0001};
  for (std::uint64_t req : traffic) {
    for (int i = 0; i < 4; ++i)
      sim.set_input(req_net[static_cast<std::size_t>(i)], (req >> i) & 1);
    sim.settle();
    int granted = -1;
    for (int i = 0; i < 4; ++i)
      if (sim.get(grant_net[static_cast<std::size_t>(i)])) granted = i;
    const int want = reference.step(req);
    std::printf("  req=%d%d%d%d  ->  grant=%s   (reference model: %s)\n",
                static_cast<int>((req >> 3) & 1),
                static_cast<int>((req >> 2) & 1),
                static_cast<int>((req >> 1) & 1),
                static_cast<int>(req & 1),
                granted < 0 ? "-" : std::to_string(granted).c_str(),
                want < 0 ? "-" : std::to_string(want).c_str());
    sim.clock();
  }
  std::printf("\nnetlist and Fig. 5 behavioral model agree; see the test\n"
              "suite for exhaustive and randomized equivalence checks.\n");
  return 0;
}
