// The paper's Section 5, end to end: the 4x4 2-D FFT taskgraph through
// temporal partitioning, spatial partitioning, memory mapping, automatic
// arbiter insertion, arbiter synthesis and cycle-level execution on the
// Wildforce-like board — then the 512x512-image wall-clock comparison
// against the Pentium-150 software model.
//
//   $ ./fft_flow
#include <cstdio>

#include "board/board.hpp"
#include "fft/fft_design.hpp"
#include "fft/workload.hpp"
#include "flow/pin_report.hpp"
#include "flow/sparcs_flow.hpp"

int main() {
  using namespace rcarb;

  const fft::FftDesign design = fft::build_fft_design();
  const board::Board board = board::wildforce();

  // A sample 4x4 pixel block.
  fft::Block block{};
  int v = 0;
  for (auto& row : block)
    for (auto& px : row) px = (v++ * 31) % 97 - 48;

  flow::FlowOptions options;
  for (std::size_t r = 0; r < 4; ++r)
    options.preload.emplace_back(
        design.mi[r],
        std::vector<std::int64_t>(block[r].begin(), block[r].end()));

  // Pin partitioning and memory mapping to the paper's Fig. 11 so the run
  // reproduces the published arbiter profile exactly.
  const auto pinned = fft::paper_partitions(design);
  options.pinned_partitions = &pinned;
  options.pinned_binding = [&](std::size_t tp) {
    return fft::paper_binding(design, tp);
  };

  const flow::FlowReport report = run_flow(design.graph, board, options);
  std::printf("%s\n", report.summary().c_str());

  // Fig. 11's pin annotations, recomputed: the bus wires of remote memory
  // access plus one Request/Grant pair per remotely arbitrated task.
  for (std::size_t tp = 0; tp < report.partitions.size(); ++tp) {
    const auto& pr = report.partitions[tp];
    const flow::PinReport pins = flow::compute_pin_report(
        design.graph, board, pr.binding, pr.plan, pr.tasks);
    std::printf("TP%zu inter-FPGA pins:\n%s", tp,
                pins.to_string(board).c_str());
  }
  std::printf("\n");

  // Verify the hardware execution against the exact reference transform.
  const fft::BlockSpectrum want = fft::fft2d_4x4(block);
  bool exact = true;
  for (std::size_t j = 0; j < 4; ++j) {
    const auto& words = report.final_memory[design.mo[j]];
    for (std::size_t k = 0; k < 4; ++k)
      exact = exact && words[k] == want[j][k].re &&
              words[4 + k] == want[j][k].im;
  }
  std::printf("FFT output vs reference transform: %s\n\n",
              exact ? "bit-exact" : "MISMATCH");

  std::printf("spectrum of MO1 (column 0):\n");
  for (std::size_t k = 0; k < 4; ++k)
    std::printf("  Y[%zu] = %lld %+lldj\n", k,
                static_cast<long long>(report.final_memory[design.mo[0]][k]),
                static_cast<long long>(
                    report.final_memory[design.mo[0]][4 + k]));

  // The paper's wall-clock comparison.
  const fft::ImageWorkload image{};
  const fft::HardwareModel hw{report.design_clock_mhz};
  const fft::PentiumModel cpu{};
  std::printf(
      "\n512x512 image (%zu blocks):\n"
      "  hardware : %llu cycles/block at %.1f MHz -> %.2f s  (paper: 4.4 s)\n"
      "  software : %.0f cycles/block at 150 MHz  -> %.2f s  (paper: 6.8 s)\n",
      image.blocks(), static_cast<unsigned long long>(report.total_cycles),
      report.design_clock_mhz, hw.seconds(image, report.total_cycles),
      cpu.cycles_per_block(), cpu.seconds(image));
  return 0;
}
