// A second data-dominated application (the class of workloads the paper
// targets): a small image pipeline.  A capture task fans an 8-pixel scan
// line out to two parallel filters (box blur and edge detect) that share
// the same physical memory bank holding both their working segments, and a
// combiner fuses the results.  Everything below the taskgraph — partitions,
// memory mapping, arbitration — is derived automatically, exactly as for
// the FFT.
//
//   $ ./image_pipeline
#include <cstdio>
#include <vector>

#include "board/board.hpp"
#include "flow/sparcs_flow.hpp"
#include "taskgraph/taskgraph.hpp"

namespace {

constexpr int kLine = 8;

/// The reference pipeline in plain C++ (the oracle).
std::vector<std::int64_t> reference(const std::vector<std::int64_t>& in) {
  std::vector<std::int64_t> blur(kLine), edge(kLine), out(kLine);
  for (int i = 0; i < kLine; ++i) {
    const std::int64_t left = in[static_cast<std::size_t>(i == 0 ? 0 : i - 1)];
    const std::int64_t right =
        in[static_cast<std::size_t>(i == kLine - 1 ? kLine - 1 : i + 1)];
    // Arithmetic >> 1, matching the datapath's shifter (floor division).
    blur[static_cast<std::size_t>(i)] =
        (left + in[static_cast<std::size_t>(i)] + right) >> 1;
    edge[static_cast<std::size_t>(i)] = right - left;
    out[static_cast<std::size_t>(i)] = blur[static_cast<std::size_t>(i)] +
                                       2 * edge[static_cast<std::size_t>(i)];
  }
  return out;
}

}  // namespace

int main() {
  using namespace rcarb;

  tg::TaskGraph graph("image_pipeline");
  const auto line = graph.add_segment("LINE", 64, kLine);
  const auto blur = graph.add_segment("BLUR", 64, kLine);
  const auto edge = graph.add_segment("EDGE", 64, kLine);
  const auto fused = graph.add_segment("OUT", 64, kLine);

  // capture: normalizes the raw line in place (the producer stage).
  tg::Program capture;
  capture.load_imm(0, 0);
  for (int i = 0; i < kLine; ++i)
    capture.load(1, static_cast<int>(line), 0, i)
        .add_imm(1, 1, 0)
        .store(static_cast<int>(line), 0, 1, i);
  capture.halt();

  // blur_task: out[i] = (in[i-1] + in[i] + in[i+1]) / 2 with edge clamping.
  tg::Program blur_task;
  blur_task.load_imm(0, 0);
  for (int i = 0; i < kLine; ++i) {
    const int l = i == 0 ? 0 : i - 1;
    const int r = i == kLine - 1 ? kLine - 1 : i + 1;
    blur_task.load(1, static_cast<int>(line), 0, l)
        .load(2, static_cast<int>(line), 0, i)
        .load(3, static_cast<int>(line), 0, r)
        .add(4, 1, 2)
        .add(4, 4, 3)
        .shr(4, 4, 1)
        .store(static_cast<int>(blur), 0, 4, i);
  }
  blur_task.halt();

  // edge_task: out[i] = in[i+1] - in[i-1].
  tg::Program edge_task;
  edge_task.load_imm(0, 0);
  for (int i = 0; i < kLine; ++i) {
    const int l = i == 0 ? 0 : i - 1;
    const int r = i == kLine - 1 ? kLine - 1 : i + 1;
    edge_task.load(1, static_cast<int>(line), 0, r)
        .load(2, static_cast<int>(line), 0, l)
        .sub(3, 1, 2)
        .store(static_cast<int>(edge), 0, 3, i);
  }
  edge_task.halt();

  // combine: out[i] = blur[i] + 2*edge[i].
  tg::Program combine;
  combine.load_imm(0, 0);
  for (int i = 0; i < kLine; ++i)
    combine.load(1, static_cast<int>(blur), 0, i)
        .load(2, static_cast<int>(edge), 0, i)
        .shl(2, 2, 1)
        .add(3, 1, 2)
        .store(static_cast<int>(fused), 0, 3, i);
  combine.halt();

  const auto t_cap = graph.add_task("capture", capture, 80);
  const auto t_blur = graph.add_task("blur", blur_task, 200);
  const auto t_edge = graph.add_task("edge", edge_task, 180);
  const auto t_comb = graph.add_task("combine", combine, 100);
  graph.add_control_dep(t_cap, t_blur);
  graph.add_control_dep(t_cap, t_edge);  // blur & edge run IN PARALLEL
  graph.add_control_dep(t_blur, t_comb);
  graph.add_control_dep(t_edge, t_comb);

  // Input scan line.
  std::vector<std::int64_t> input;
  for (int i = 0; i < kLine; ++i) input.push_back((i * 37) % 29 - 14);

  flow::FlowOptions options;
  options.preload.emplace_back(line, input);
  // Dependency-aware elision: only the genuinely parallel blur/edge pair
  // needs an arbiter; the serialized capture/combine stages do not.
  options.insertion.elide_serialized = true;
  const flow::FlowReport report =
      run_flow(graph, board::mini2(), options);
  std::printf("%s\n", report.summary().c_str());

  std::printf("arbitration detail:\n");
  for (const auto& pr : report.partitions)
    for (const auto& a : pr.plan.arbiters) {
      std::printf("  %zu-input arbiter on %s over:", a.ports.size(),
                  a.resource_name.c_str());
      for (const auto t : a.ports)
        std::printf(" %s", graph.task(t).name.c_str());
      std::printf("\n");
    }

  const std::vector<std::int64_t> want = reference(input);
  bool exact = true;
  for (int i = 0; i < kLine; ++i)
    exact = exact &&
            report.final_memory[fused][static_cast<std::size_t>(i)] ==
                want[static_cast<std::size_t>(i)];
  std::printf("\npipeline output: ");
  for (int i = 0; i < kLine; ++i)
    std::printf("%lld ", static_cast<long long>(
                             report.final_memory[fused][static_cast<std::size_t>(i)]));
  std::printf("\nreference:       ");
  for (int i = 0; i < kLine; ++i)
    std::printf("%lld ", static_cast<long long>(want[static_cast<std::size_t>(i)]));
  std::printf("\n=> %s\n", exact ? "bit-exact" : "MISMATCH");
  std::printf(
      "\nthe two parallel filters read the LINE segment through one bank:\n"
      "the flow noticed and arbitrated them automatically; the serialized\n"
      "capture/combine stages needed none.\n");
  return 0;
}
